(** NBench (BYTEmark) — the CPU/FPU/memory suite of Fig. 8a.

    Ten kernels, each genuinely computed (sorts really sort, the cipher
    really enciphers, LU really factorizes — results are asserted), with
    cycle charges proportional to the work done plus memory-system charges
    through the backend's {!Hyperenclave_tee.Mem_sim}.  Timer interrupts
    fire while kernels run, which is where the enclave overhead for
    CPU-bound work comes from (AEX + ERESUME per tick). *)

open Hyperenclave_tee

val kernel_names : string list
(** The ten BYTEmark kernels. *)

val kernel_count : int

val handlers : unit -> (int * Backend.handler) list
(** ECALL handlers (ids 100..109); register when building a backend. *)

val ecall_id : int -> int
(** [ecall_id i] is the ECALL id of kernel [i]. *)

val encode_iterations : int -> bytes
val run_kernel : Backend.t -> index:int -> iterations:int -> int
(** Run one kernel for [iterations] inside the backend; simulated cycles
    consumed. *)

val run_suite : Backend.t -> iterations:int -> (string * int) list
(** All ten kernels; (name, cycles) pairs. *)
