open Hyperenclave_hw
open Hyperenclave_tee

let kernel_names =
  [
    "numeric sort";
    "string sort";
    "bitfield";
    "fp emulation";
    "fourier";
    "assignment";
    "idea";
    "huffman";
    "neural net";
    "lu decomposition";
  ]

let kernel_count = List.length kernel_names
let ecall_id i = 100 + i

(* Synthetic data addresses for the memory simulator: each kernel works in
   its own 1 MiB window. *)
let data_base i = 0x400_0000 + (i * 0x10_0000)

(* --- 1. numeric sort -------------------------------------------------------- *)

let numeric_sort (env : Backend.env) rng =
  let n = 4096 in
  let a = Array.init n (fun _ -> Rng.int rng 1_000_000) in
  let comps = ref 0 in
  let rec qsort lo hi =
    if lo < hi then begin
      let pivot = a.((lo + hi) / 2) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while
          incr comps;
          a.(!i) < pivot
        do
          incr i
        done;
        while
          incr comps;
          a.(!j) > pivot
        do
          decr j
        done;
        if !i <= !j then begin
          let tmp = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- tmp;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  qsort 0 (n - 1);
  for i = 1 to n - 1 do
    assert (a.(i - 1) <= a.(i))
  done;
  env.Backend.compute (!comps * 6);
  Mem_sim.seq_scan env.Backend.mem ~base:(data_base 0) ~bytes:(n * 8) ~write:true

(* --- 2. string sort --------------------------------------------------------- *)

let string_sort (env : Backend.env) rng =
  let n = 768 in
  let strings =
    Array.init n (fun _ ->
        String.init (8 + Rng.int rng 24) (fun _ -> Char.chr (97 + Rng.int rng 26)))
  in
  let comps = ref 0 in
  Array.sort
    (fun a b ->
      incr comps;
      compare a b)
    strings;
  for i = 1 to n - 1 do
    assert (strings.(i - 1) <= strings.(i))
  done;
  env.Backend.compute (!comps * 20);
  Mem_sim.seq_scan env.Backend.mem ~base:(data_base 1) ~bytes:(n * 32) ~write:true

(* --- 3. bitfield ------------------------------------------------------------ *)

let bitfield (env : Backend.env) rng =
  let bits = 32768 in
  let field = Bytes.make (bits / 8) '\000' in
  let get i = Char.code (Bytes.get field (i / 8)) land (1 lsl (i mod 8)) <> 0 in
  let set i v =
    let b = Char.code (Bytes.get field (i / 8)) in
    let b = if v then b lor (1 lsl (i mod 8)) else b land lnot (1 lsl (i mod 8)) in
    Bytes.set field (i / 8) (Char.chr (b land 0xff))
  in
  let ops = ref 0 in
  for _ = 1 to 1024 do
    let start = Rng.int rng (bits - 64) in
    let len = 1 + Rng.int rng 63 in
    let kind = Rng.int rng 3 in
    for i = start to start + len - 1 do
      incr ops;
      match kind with
      | 0 -> set i true
      | 1 -> set i false
      | _ -> set i (not (get i))
    done
  done;
  env.Backend.compute (!ops * 4);
  Mem_sim.random_access env.Backend.mem ~base:(data_base 2) ~working_set:(bits / 8)
    ~count:1024 ~write:true

(* --- 4. fp emulation (software floating point on integers) ----------------- *)

type soft_float = { sign : int; exp : int; mant : int }

let normalize f =
  if f.mant = 0 then { f with exp = 0 }
  else begin
    let mant = ref f.mant and exp = ref f.exp in
    while !mant >= 1 lsl 24 do
      mant := !mant lsr 1;
      incr exp
    done;
    while !mant < 1 lsl 23 do
      mant := !mant lsl 1;
      decr exp
    done;
    { f with mant = !mant; exp = !exp }
  end

let soft_of_int n =
  if n = 0 then { sign = 0; exp = 0; mant = 0 }
  else normalize { sign = (if n < 0 then 1 else 0); exp = 23; mant = abs n }

let soft_add a b =
  if a.mant = 0 then b
  else if b.mant = 0 then a
  else begin
    let hi, lo = if a.exp >= b.exp then (a, b) else (b, a) in
    let shift = min 30 (hi.exp - lo.exp) in
    let lo_mant = lo.mant lsr shift in
    if hi.sign = lo.sign then normalize { hi with mant = hi.mant + lo_mant }
    else if hi.mant >= lo_mant then normalize { hi with mant = hi.mant - lo_mant }
    else normalize { lo with mant = lo_mant - hi.mant }
  end

let soft_mul a b =
  if a.mant = 0 || b.mant = 0 then { sign = 0; exp = 0; mant = 0 }
  else
    normalize
      {
        sign = a.sign lxor b.sign;
        exp = a.exp + b.exp - 23;
        mant = (a.mant lsr 12) * (b.mant lsr 11);
      }

let fp_emulation (env : Backend.env) rng =
  let ops = ref 0 in
  let acc = ref (soft_of_int 1) in
  for _ = 1 to 2048 do
    let x = soft_of_int (1 + Rng.int rng 1000) in
    let y = soft_of_int (1 + Rng.int rng 1000) in
    acc := soft_add (soft_mul x y) !acc;
    (* Keep the accumulator bounded so exponents stay sane. *)
    if !acc.exp > 60 then acc := soft_of_int 1;
    ops := !ops + 2
  done;
  assert (!acc.mant >= 0);
  env.Backend.compute (!ops * 45)

(* --- 5. fourier (numeric integration of coefficients) ----------------------- *)

let fourier (env : Backend.env) _rng =
  let coeffs = 48 in
  let steps = 32 in
  let f x = (x +. 1.0) ** 1.5 in
  let integrate g =
    let lo = 0.0 and hi = 2.0 in
    let dx = (hi -. lo) /. float_of_int steps in
    let acc = ref 0.0 in
    for i = 0 to steps - 1 do
      let x = lo +. ((float_of_int i +. 0.5) *. dx) in
      acc := !acc +. (g x *. dx)
    done;
    !acc
  in
  let total = ref 0.0 in
  for n = 1 to coeffs do
    let fn = float_of_int n in
    total := !total +. integrate (fun x -> f x *. cos (fn *. x));
    total := !total +. integrate (fun x -> f x *. sin (fn *. x))
  done;
  assert (Float.is_finite !total);
  env.Backend.compute (coeffs * 2 * steps * 60)

(* --- 6. assignment ----------------------------------------------------------- *)

let assignment (env : Backend.env) rng =
  let n = 32 in
  let cost = Array.init n (fun _ -> Array.init n (fun _ -> Rng.int rng 100)) in
  (* Greedy seed + pairwise-exchange improvement (the spirit of the BYTEmark
     assignment kernel without the full Hungarian machinery). *)
  let assign = Array.init n (fun i -> i) in
  let ops = ref (n * n) in
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        incr ops;
        let current = cost.(i).(assign.(i)) + cost.(j).(assign.(j)) in
        let swapped = cost.(i).(assign.(j)) + cost.(j).(assign.(i)) in
        if swapped < current then begin
          let tmp = assign.(i) in
          assign.(i) <- assign.(j);
          assign.(j) <- tmp;
          improved := true
        end
      done
    done
  done;
  env.Backend.compute (!ops * 8);
  Mem_sim.seq_scan env.Backend.mem ~base:(data_base 5) ~bytes:(n * n * 4)
    ~write:false

(* --- 7. IDEA cipher ----------------------------------------------------------- *)

let idea_mul a b =
  (* multiplication modulo 2^16 + 1, with 0 meaning 2^16 *)
  let a = if a = 0 then 0x10000 else a in
  let b = if b = 0 then 0x10000 else b in
  let p = a * b mod 0x10001 in
  if p = 0x10000 then 0 else p

let idea_round x0 x1 x2 x3 k =
  let y0 = idea_mul x0 k.(0) in
  let y1 = (x1 + k.(1)) land 0xffff in
  let y2 = (x2 + k.(2)) land 0xffff in
  let y3 = idea_mul x3 k.(3) in
  let t0 = idea_mul (y0 lxor y2) k.(4) in
  let t1 = idea_mul ((y1 lxor y3) + t0 land 0xffff) k.(5) in
  let t2 = (t0 + t1) land 0xffff in
  (y0 lxor t1, y2 lxor t1, y1 lxor t2, y3 lxor t2)

let idea (env : Backend.env) rng =
  let key = Array.init 52 (fun _ -> Rng.int rng 0x10000) in
  let blocks = 512 in
  let checksum = ref 0 in
  for b = 0 to blocks - 1 do
    let x0 = ref (b land 0xffff)
    and x1 = ref (b * 7 land 0xffff)
    and x2 = ref (b * 13 land 0xffff)
    and x3 = ref (b * 31 land 0xffff) in
    for round = 0 to 7 do
      let k = Array.sub key (round * 6) 6 in
      let a, b', c, d = idea_round !x0 !x1 !x2 !x3 k in
      x0 := a;
      x1 := b';
      x2 := c;
      x3 := d
    done;
    checksum := !checksum lxor !x0 lxor !x1 lxor !x2 lxor !x3
  done;
  assert (!checksum >= 0);
  env.Backend.compute (blocks * 8 * 14);
  Mem_sim.seq_scan env.Backend.mem ~base:(data_base 6) ~bytes:(blocks * 8)
    ~write:true

(* --- 8. huffman --------------------------------------------------------------- *)

type huff_tree = Leaf of int * int | Node of int * huff_tree * huff_tree

let huff_weight = function Leaf (w, _) -> w | Node (w, _, _) -> w

let huffman (env : Backend.env) rng =
  let len = 4096 in
  let data = Bytes.init len (fun _ -> Char.chr (Rng.int rng 64)) in
  let freq = Array.make 256 0 in
  Bytes.iter (fun c -> freq.(Char.code c) <- freq.(Char.code c) + 1) data;
  let leaves =
    Array.to_list freq
    |> List.mapi (fun sym w -> (sym, w))
    |> List.filter (fun (_, w) -> w > 0)
    |> List.map (fun (sym, w) -> Leaf (w, sym))
  in
  let rec build = function
    | [] -> invalid_arg "huffman: empty"
    | [ tree ] -> tree
    | trees ->
        let sorted = List.sort (fun a b -> compare (huff_weight a) (huff_weight b)) trees in
        (match sorted with
        | a :: b :: rest -> build (Node (huff_weight a + huff_weight b, a, b) :: rest)
        | [ _ ] | [] -> assert false)
  in
  let tree = build leaves in
  let codes = Array.make 256 0 in
  let rec fill tree depth =
    match tree with
    | Leaf (_, sym) -> codes.(sym) <- max 1 depth
    | Node (_, l, r) ->
        fill l (depth + 1);
        fill r (depth + 1)
  in
  fill tree 0;
  let bits = ref 0 in
  Bytes.iter (fun c -> bits := !bits + codes.(Char.code c)) data;
  assert (!bits > 0 && !bits <= len * 8);
  env.Backend.compute ((len * 12) + (256 * 30));
  Mem_sim.seq_scan env.Backend.mem ~base:(data_base 7) ~bytes:len ~write:false

(* --- 9. neural net ------------------------------------------------------------ *)

let neural_net (env : Backend.env) rng =
  let inputs = 8 and hidden = 8 and outputs = 4 in
  let w1 = Array.init hidden (fun _ -> Array.init inputs (fun _ -> Rng.float rng 1.0 -. 0.5)) in
  let w2 = Array.init outputs (fun _ -> Array.init hidden (fun _ -> Rng.float rng 1.0 -. 0.5)) in
  let sigmoid x = 1.0 /. (1.0 +. exp (-.x)) in
  let iterations = 64 in
  for _ = 1 to iterations do
    let x = Array.init inputs (fun _ -> Rng.float rng 1.0) in
    let target = Array.init outputs (fun _ -> Rng.float rng 1.0) in
    let h = Array.map (fun row -> sigmoid (Array.fold_left ( +. ) 0.0 (Array.mapi (fun i w -> w *. x.(i)) row))) w1 in
    let o = Array.map (fun row -> sigmoid (Array.fold_left ( +. ) 0.0 (Array.mapi (fun i w -> w *. h.(i)) row))) w2 in
    (* Backpropagation with a fixed learning rate. *)
    let delta_o = Array.mapi (fun i v -> (target.(i) -. v) *. v *. (1.0 -. v)) o in
    Array.iteri
      (fun i row -> Array.iteri (fun j w -> row.(j) <- w +. (0.25 *. delta_o.(i) *. h.(j))) row)
      w2;
    let delta_h =
      Array.init hidden (fun j ->
          let back = ref 0.0 in
          Array.iteri (fun i d -> back := !back +. (d *. w2.(i).(j))) delta_o;
          !back *. h.(j) *. (1.0 -. h.(j)))
    in
    Array.iteri
      (fun j row -> Array.iteri (fun k w -> row.(k) <- w +. (0.25 *. delta_h.(j) *. x.(k))) row)
      w1
  done;
  env.Backend.compute (iterations * ((inputs * hidden) + (hidden * outputs)) * 14)

(* --- 10. LU decomposition ------------------------------------------------------ *)

let lu_decomposition (env : Backend.env) rng =
  let n = 32 in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> Rng.float rng 10.0 +. 0.1)) in
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) +. 50.0 (* diagonal dominance: no pivoting woes *)
  done;
  for k = 0 to n - 1 do
    for i = k + 1 to n - 1 do
      let factor = a.(i).(k) /. a.(k).(k) in
      a.(i).(k) <- factor;
      for j = k + 1 to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (factor *. a.(k).(j))
      done
    done
  done;
  for i = 0 to n - 1 do
    assert (Float.is_finite a.(i).(i) && a.(i).(i) <> 0.0)
  done;
  env.Backend.compute (n * n * n / 3 * 10);
  Mem_sim.seq_scan env.Backend.mem ~base:(data_base 9) ~bytes:(n * n * 8)
    ~write:true

(* --- suite runner --------------------------------------------------------------- *)

let kernels =
  [|
    numeric_sort;
    string_sort;
    bitfield;
    fp_emulation;
    fourier;
    assignment;
    idea;
    huffman;
    neural_net;
    lu_decomposition;
  |]

let encode_iterations n = Bytes.of_string (string_of_int n)

let decode_iterations data =
  match int_of_string_opt (Bytes.to_string data) with
  | Some n when n > 0 -> n
  | Some _ | None -> invalid_arg "Nbench: bad iteration count"

let handler index : Backend.handler =
 fun env input ->
  let iterations = decode_iterations input in
  let rng = Rng.create ~seed:(Int64.of_int (1000 + index)) in
  let timer = Timer.create env in
  for _ = 1 to iterations do
    kernels.(index) env rng;
    Timer.check timer env
  done;
  Bytes.empty

let handlers () = List.init kernel_count (fun i -> (ecall_id i, handler i))

let run_kernel (backend : Backend.t) ~index ~iterations =
  let _, cycles =
    Cycles.time backend.Backend.clock (fun () ->
        backend.Backend.call ~id:(ecall_id index)
          ~data:(encode_iterations iterations)
          ~direction:Hyperenclave_sdk.Edge.In ())
  in
  cycles

let run_suite backend ~iterations =
  List.mapi
    (fun index name -> (name, run_kernel backend ~index ~iterations))
    kernel_names
