(** Periodic timer-interrupt injection.

    Long-running enclave code suffers AEX + ERESUME on every timer tick
    (Sec. 4.1) — the only enclave overhead CPU-bound workloads like NBench
    see.  Workloads call {!check} at convenient points; an interrupt fires
    for every elapsed period of simulated time. *)

open Hyperenclave_tee

type t

val default_period : int
(** 550,000 cycles — a 4 kHz tick at the paper's 2.2 GHz. *)

val create : ?period:int -> Backend.env -> t
val check : t -> Backend.env -> unit
val fired : t -> int
