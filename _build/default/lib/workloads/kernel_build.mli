(** Linux-kernel-build stand-in (Table 3's last column).

    Compiles a synthetic source tree: per translation unit the "compiler"
    forks, reads the source, genuinely lexes it, hashes the contents
    (real SHA-256, charged at the crypto engine rate) and writes an
    object file.  Run natively and inside the normal VM to expose the
    virtualization overhead of a fork-heavy, syscall-heavy workload. *)

open Hyperenclave_tee

type result = {
  native_cycles : int;
  vm_cycles : int;
  overhead_pct : float;
  files : int;
}

val run : Platform.t -> ?files:int -> unit -> result
