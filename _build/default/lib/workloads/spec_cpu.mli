(** SPEC CPU 2017 INTspeed stand-ins for the virtualization-overhead study
    (Fig. 10).

    Nine integer kernels named after their SPEC counterparts, each a small
    but genuine algorithm in the same spirit (regex-ish scanning for
    perlbench, graph relaxation for mcf, alpha-beta search for deepsjeng,
    LZ-style compression for xz, ...).  Kernels run as primary-OS process
    code: computation plus page touches through the real MMU and timer
    ticks that cost a VM exit when virtualized — so the sub-1% overheads
    of Fig. 10 emerge from the model rather than being asserted. *)

open Hyperenclave_tee

val kernel_names : string list

type result = { name : string; native_cycles : int; vm_cycles : int; overhead_pct : float }

val run : Platform.t -> ?scale:int -> unit -> result list
(** [scale] multiplies each kernel's iteration count (default 1). *)
