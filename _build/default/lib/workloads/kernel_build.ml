open Hyperenclave_hw
open Hyperenclave_crypto
open Hyperenclave_os
open Hyperenclave_tee

type result = {
  native_cycles : int;
  vm_cycles : int;
  overhead_pct : float;
  files : int;
}

let source_for index =
  String.concat "\n"
    (List.init 64 (fun line ->
         Printf.sprintf "static int fn_%d_%d(int a, int b) { return a * %d + b; }"
           index line ((line * 17) + 3)))

let lex source =
  let tokens = ref 0 in
  let in_word = ref false in
  String.iter
    (fun c ->
      let word_char =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_'
      in
      if word_char && not !in_word then incr tokens;
      in_word := word_char)
    source;
  !tokens

let compile_one (p : Platform.t) index =
  (* cc1 is a fresh process per translation unit. *)
  let cc = Kernel.spawn p.kernel in
  Kernel.switch_to p.kernel cc;
  let source = source_for index in
  (* read() of the source, through the page cache. *)
  let buf_va = Kernel.mmap p.kernel cc ~len:(String.length source) ~populate:false in
  Kernel.proc_write p.kernel cc ~va:buf_va (Bytes.of_string source);
  Kernel.null_syscall p.kernel;
  let tokens = lex source in
  assert (tokens > 0);
  Cycles.tick p.clock (tokens * 220 (* parse + codegen per token *));
  let digest = Sha256.digest_string source in
  assert (Bytes.length digest = 32);
  Cycles.tick p.clock (String.length source / 64 * p.cost.sha256_per_block);
  (* write() of the object file. *)
  Kernel.null_syscall p.kernel;
  Kernel.exit_process p.kernel cc;
  Kernel.switch_to p.kernel p.proc

let run_mode (p : Platform.t) ~nested ~files =
  Kernel.with_translation p.kernel ~nested (fun () ->
      let _, cycles =
        Cycles.time p.clock (fun () ->
            for index = 1 to files do
              compile_one p index
            done)
      in
      cycles)

let run (p : Platform.t) ?(files = 48) () =
  let native_cycles = run_mode p ~nested:false ~files in
  let vm_cycles = run_mode p ~nested:true ~files in
  {
    native_cycles;
    vm_cycles;
    overhead_pct =
      float_of_int (vm_cycles - native_cycles)
      /. float_of_int native_cycles *. 100.0;
    files;
  }
