(** LMBench micro-benchmarks, native vs. inside the normal VM (Table 3).

    Six operations from McVoy & Staelin's suite: null syscall, fork,
    context switch (16 processes / 64 KB working set in the original; two
    processes with the same working set here), mmap, page fault, and an
    AF_UNIX round trip.  Each runs twice through the real kernel paths —
    once with native 1-level translation and once under RustMonitor's
    nested table — so the virtualization overhead is whatever the MMU
    model produces (extra nested walk loads on TLB misses), not a
    hard-coded percentage. *)

open Hyperenclave_tee

type result = {
  name : string;
  native_us : float;
  vm_us : float;
  overhead_pct : float;
}

val op_names : string list
val run : Platform.t -> ?iterations:int -> unit -> result list
