(* Figure 8c: Lighttpd throughput for different page sizes (Sec. 7.4).

   Server inside Occlum on the enclave; 100 concurrent keep-alive clients
   over loopback in the paper — here throughput is 1/service-time, which
   for a single-threaded server under saturation is the same ranking.
   Paper: HU 81-88% of baseline, GU 69-78%, SGX 51-63%; the gaps are
   world-switch costs on the per-request/per-chunk socket OCALLs. *)

open Hyperenclave
module Httpd = Hyperenclave_workloads.Httpd

let page_sizes = [ 1024; 4 * 1024; 16 * 1024; 64 * 1024; 128 * 1024 ]
let requests = 60

let pages = List.map (fun s -> (Printf.sprintf "/p%d.html" s, s)) page_sizes

let serve_avg backend ~path =
  (* warm-up then measured run *)
  ignore (Httpd.serve backend ~path);
  let total = ref 0 in
  for _ = 1 to requests do
    total := !total + Httpd.serve backend ~path
  done;
  float_of_int !total /. float_of_int requests

let run () =
  Util.banner "Figure 8c"
    "Lighttpd throughput relative to the unprotected baseline vs page size; \
     paper: HU 0.81-0.88, GU 0.69-0.78, SGX 0.51-0.63.";
  let native () =
    Backend.native ~clock:(Cycles.create ()) ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:31L) ~handlers:(Httpd.handlers ~pages)
      ~ocalls:(Httpd.ocalls ())
  in
  let hyper mode () =
    let platform = Platform.create ~seed:606L () in
    Backend.hyperenclave platform ~mode ~handlers:(Httpd.handlers ~pages)
      ~ocalls:(Httpd.ocalls ()) ()
  in
  let sgx () =
    Backend.sgx ~clock:(Cycles.create ()) ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:32L) ~handlers:(Httpd.handlers ~pages)
      ~ocalls:(Httpd.ocalls ()) ()
  in
  let backends =
    [
      ("baseline", native ());
      ("HU", hyper Sgx_types.HU ());
      ("GU", hyper Sgx_types.GU ());
      ("Intel SGX", sgx ());
    ]
  in
  let rows =
    List.map
      (fun size ->
        let path = Printf.sprintf "/p%d.html" size in
        let cycles =
          List.map (fun (name, b) -> (name, serve_avg b ~path)) backends
        in
        let base = List.assoc "baseline" cycles in
        (string_of_int (size / 1024) ^ " KB page")
        :: Printf.sprintf "%.0f rps" (Httpd.throughput_rps ~cycles_per_request:base)
        :: List.filter_map
             (fun (name, c) ->
               if name = "baseline" then None
               else Some (Printf.sprintf "%.2f" (base /. c)))
             cycles)
      page_sizes
  in
  List.iter (fun (_, b) -> b.Backend.destroy ()) backends;
  Util.print_table
    ~columns:[ "page"; "baseline"; "HU"; "GU"; "Intel SGX" ]
    rows
