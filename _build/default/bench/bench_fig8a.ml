(* Figure 8a: NBench relative scores (Sec. 7.4).

   Baseline = the same kernels with no protection ("SDK simulation
   mode").  Paper: HyperEnclave overhead ~1%, SGX ~3% — CPU-bound code
   only pays for timer-tick AEXes and slightly pricier memory. *)

open Hyperenclave
module Nbench = Hyperenclave_workloads.Nbench

let iterations = 25

let native_run () =
  let clock = Cycles.create () in
  let backend =
    Backend.native ~clock ~cost:Cost_model.default ~rng:(Rng.create ~seed:11L)
      ~handlers:(Nbench.handlers ()) ~ocalls:[]
  in
  Nbench.run_suite backend ~iterations

let hyperenclave_run mode =
  let platform = Platform.create ~seed:404L () in
  let backend =
    Backend.hyperenclave platform ~mode ~handlers:(Nbench.handlers ())
      ~ocalls:[] ()
  in
  let result = Nbench.run_suite backend ~iterations in
  backend.Backend.destroy ();
  result

let sgx_run () =
  let clock = Cycles.create () in
  let backend =
    Backend.sgx ~clock ~cost:Cost_model.default ~rng:(Rng.create ~seed:12L)
      ~handlers:(Nbench.handlers ()) ~ocalls:[] ()
  in
  Nbench.run_suite backend ~iterations

let run () =
  Util.banner "Figure 8a"
    "NBench scores relative to the unprotected baseline (1.00 = no \
     slowdown); paper: HyperEnclave ~0.99, SGX ~0.97.";
  let native = native_run () in
  let hyper = hyperenclave_run Sgx_types.GU in
  let sgx = sgx_run () in
  let rows =
    List.map2
      (fun (name, base_cycles) ((_, h_cycles), (_, s_cycles)) ->
        [
          name;
          Printf.sprintf "%.3f" (float_of_int base_cycles /. float_of_int h_cycles);
          Printf.sprintf "%.3f" (float_of_int base_cycles /. float_of_int s_cycles);
        ])
      native
      (List.combine hyper sgx)
  in
  let geomean select =
    let logs =
      List.map2
        (fun (_, b) pair ->
          let x = select pair in
          log (float_of_int b /. float_of_int x))
        native
        (List.combine hyper sgx)
    in
    exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))
  in
  Util.print_table
    ~columns:[ "kernel"; "HyperEnclave"; "Intel SGX" ]
    (rows
    @ [
        [
          "geometric mean";
          Printf.sprintf "%.3f" (geomean (fun ((_, h), _) -> h));
          Printf.sprintf "%.3f" (geomean (fun (_, (_, s)) -> s));
        ];
      ])
