(* Figure 10: virtualization overhead on SPEC CPU 2017 INTspeed
   (Appendix A.2).  Paper: less than 1% in most benchmarks. *)

open Hyperenclave
module Spec_cpu = Hyperenclave_workloads.Spec_cpu

let run () =
  Util.banner "Figure 10"
    "SPEC CPU 2017 INTspeed stand-ins, native vs normal VM; paper: <1% \
     overhead in most benchmarks.";
  let platform = Platform.create ~seed:909L () in
  let results = Spec_cpu.run platform () in
  Util.print_table
    ~columns:[ "benchmark"; "native Mcyc"; "VM Mcyc"; "overhead" ]
    (List.map
       (fun (r : Spec_cpu.result) ->
         [
           r.Spec_cpu.name;
           Printf.sprintf "%.2f" (float_of_int r.Spec_cpu.native_cycles /. 1e6);
           Printf.sprintf "%.2f" (float_of_int r.Spec_cpu.vm_cycles /. 1e6);
           Util.pct r.Spec_cpu.overhead_pct;
         ])
       results)
