bench/main.mli:
