bench/bench_table3.ml: Hyperenclave Hyperenclave_workloads List Platform Printf Util
