bench/bench_table1.ml: Backend Bytes Cost_model Cycles Edge Enclave Hyperenclave List Monitor Platform Rng Sgx_types Urts Util
