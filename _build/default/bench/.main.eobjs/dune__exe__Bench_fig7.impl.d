bench/bench_fig7.ml: Bytes Cycles Edge Hyperenclave List Platform Printf Sgx_types Tenv Urts Util
