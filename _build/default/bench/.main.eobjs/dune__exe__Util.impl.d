bench/util.ml: Filename List Printf String Unix
