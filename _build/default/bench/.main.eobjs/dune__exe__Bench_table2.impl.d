bench/bench_table2.ml: Bytes Cost_model Cycles Edge Hyperenclave Hyperenclave_crypto Hyperenclave_sgx Page_table Platform Rng Sgx_types Tenv Urts Util
