bench/bench_fig11.ml: Cost_model Hw Hyperenclave Hyperenclave_workloads List Platform Printf Util
