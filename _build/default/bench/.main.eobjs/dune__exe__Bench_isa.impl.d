bench/bench_isa.ml: Backend Bytes Cost_model Cycles Edge Hyperenclave Hyperenclave_monitor List Platform Sgx_types Util
