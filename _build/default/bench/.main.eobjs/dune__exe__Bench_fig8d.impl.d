bench/bench_fig8d.ml: Backend Cost_model Cycles Hyperenclave Hyperenclave_workloads List Platform Printf Rng Sgx_types Util
