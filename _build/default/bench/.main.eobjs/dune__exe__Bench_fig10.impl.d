bench/bench_fig10.ml: Hyperenclave Hyperenclave_workloads List Platform Printf Util
