bench/bench_ablation.ml: Array Backend Bytes Cost_model Cycles Edge Hyperenclave Hyperenclave_workloads List Page_table Platform Printf Rng Sgx_types Tenv Urts Util
