(* Figure 11: memory-encryption overhead for sequential and random access
   patterns, 16 KB - 256 MB (Appendix A.3).

   Three engines: no encryption, AMD SME (HyperEnclave) and Intel MEE
   with its 93 MB EPC (SGX).  Expected shape: flat below the 8 MB LLC;
   past it sequential overhead ~2.4x (SME) / ~3x (MEE) vs unencrypted;
   random pays the MEE integrity-tree walk; past 93 MB SGX additionally
   pays EPC paging (the paper quotes 45x/1000x there) while HyperEnclave
   stays flat because its enclave memory is only bounded by the
   reservation (24 GB on the paper's machine). *)

open Hyperenclave
module Memlat = Hyperenclave_workloads.Memlat

let engines =
  [
    ("plain", Hw.Mem_crypto.Plain);
    ("SME (HyperEnclave)", Hw.Mem_crypto.Sme);
    ("MEE 93MB EPC (SGX)", Hw.Mem_crypto.Mee { epc_bytes = Platform.sgx_epc_bytes });
  ]

let patterns = [ ("sequential", `Seq); ("random", `Random) ]

let run () =
  Util.banner "Figure 11"
    "Memory access latency with/without encryption (cycles/access) and the \
     slowdown vs the unencrypted run at the same size.  LLC = 8 MB, SGX EPC \
     = 93 MB.";
  List.iter
    (fun (pattern_name, pattern) ->
      Printf.printf "\n-- %s accesses --\n" pattern_name;
      let series =
        List.map
          (fun (name, engine) ->
            ( name,
              Memlat.series ~cost:Cost_model.default ~engine ~pattern
                ~sizes:Memlat.default_sizes ))
          engines
      in
      let plain = List.assoc "plain" series in
      let rows =
        List.mapi
          (fun i (p : Memlat.point) ->
            Util.human_bytes p.Memlat.size
            :: List.concat_map
                 (fun (name, points) ->
                   let x = List.nth points i in
                   let latency = Printf.sprintf "%.0f" x.Memlat.latency_cycles in
                   if name = "plain" then [ latency ]
                   else
                     [
                       latency;
                       Printf.sprintf "%.1fx"
                         (x.Memlat.latency_cycles /. p.Memlat.latency_cycles);
                     ])
                 series)
          plain
      in
      Util.print_table
        ~columns:
          [ "buffer"; "plain"; "SME"; "ovh"; "MEE"; "ovh" ]
        rows)
    patterns
