(* Table 3: virtualization overhead on LMBench and a kernel build
   (Appendix A.2).

   Every operation runs twice through the real kernel paths: natively
   (1-level translation) and inside the normal VM (under RustMonitor's
   nested table).  The paper reports <1% overhead in most rows. *)

open Hyperenclave
module Lmbench = Hyperenclave_workloads.Lmbench
module Kernel_build = Hyperenclave_workloads.Kernel_build

let run () =
  Util.banner "Table 3"
    "LMBench + kernel build, native vs normal VM; paper: overhead below 1% \
     in most benchmarks (pass-through devices, huge-page NPT).";
  let platform = Platform.create ~seed:808L () in
  let lm = Lmbench.run platform () in
  let rows =
    List.map
      (fun (r : Lmbench.result) ->
        [
          r.Lmbench.name;
          Printf.sprintf "%.3f us" r.Lmbench.native_us;
          Printf.sprintf "%.3f us" r.Lmbench.vm_us;
          Util.pct r.Lmbench.overhead_pct;
        ])
      lm
  in
  let kb = Kernel_build.run platform () in
  let kb_row =
    [
      Printf.sprintf "kernel build (%d files)" kb.Kernel_build.files;
      Printf.sprintf "%.2f ms"
        (float_of_int kb.Kernel_build.native_cycles /. 2.2e6);
      Printf.sprintf "%.2f ms" (float_of_int kb.Kernel_build.vm_cycles /. 2.2e6);
      Util.pct kb.Kernel_build.overhead_pct;
    ]
  in
  Util.print_table
    ~columns:[ "benchmark"; "native"; "normal VM"; "overhead" ]
    (rows @ [ kb_row ])
