(* Figure 8b: in-memory SQLite under YCSB workload A, throughput vs
   record count (Sec. 7.4).

   Paper shape: SGX runs at ~75% of its baseline while the table fits in
   the EPC, then falls to ~50% once the working set crosses ~90 MB (EPC
   paging).  HyperEnclave (GU and HU) stays within 5% of baseline
   throughout.  Records are 1 KB, so the crossover sits at ~93k records. *)

open Hyperenclave
module Kvdb = Hyperenclave_workloads.Kvdb

let record_counts = [ 10_000; 25_000; 50_000; 75_000; 100_000; 130_000 ]
let ops = 8_000

let run_backend make_backend ~records =
  let backend = make_backend () in
  ignore (Kvdb.load backend ~records);
  let cycles = Kvdb.run_ops backend ~records ~ops in
  backend.Backend.destroy ();
  cycles

let run () =
  Util.banner "Figure 8b"
    "SQLite (in-memory, YCSB A, 1 KB records) throughput relative to the \
     unprotected baseline; paper: SGX ~0.75 under the 90 MB EPC then ~0.50 \
     beyond it; HyperEnclave GU/HU > 0.95 throughout.";
  let rows =
    List.map
      (fun records ->
        let native () =
          Backend.native ~clock:(Cycles.create ()) ~cost:Cost_model.default
            ~rng:(Rng.create ~seed:21L) ~handlers:(Kvdb.handlers ()) ~ocalls:[]
        in
        let hyper mode () =
          let platform = Platform.create ~seed:505L () in
          Backend.hyperenclave platform ~mode ~handlers:(Kvdb.handlers ())
            ~ocalls:[] ()
        in
        let sgx () =
          Backend.sgx ~clock:(Cycles.create ()) ~cost:Cost_model.default
            ~rng:(Rng.create ~seed:22L) ~handlers:(Kvdb.handlers ()) ~ocalls:[]
            ()
        in
        let base = run_backend native ~records in
        let gu = run_backend (hyper Sgx_types.GU) ~records in
        let hu = run_backend (hyper Sgx_types.HU) ~records in
        let sgx_c = run_backend sgx ~records in
        let rel x = Printf.sprintf "%.2f" (float_of_int base /. float_of_int x) in
        [
          string_of_int records;
          Util.human_bytes (records * Kvdb.record_bytes);
          Printf.sprintf "%.1f" (Kvdb.throughput_kops ~cycles:base ~ops);
          rel gu;
          rel hu;
          rel sgx_c;
        ])
      record_counts
  in
  Util.print_table
    ~columns:
      [ "records"; "working set"; "baseline kops/s"; "GU"; "HU"; "Intel SGX" ]
    rows
