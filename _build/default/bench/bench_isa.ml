(* Cross-platform projection (Sec. 8): the Table-1 edge-call costs under
   the ARMv8 and RISC-V mode mappings, measured through the full
   monitor/SDK paths on a platform built with the projected cost model.
   x86 numbers are the paper's measurements; the other two are
   projections (see lib/monitor/isa.mli). *)

open Hyperenclave
module Isa = Hyperenclave_monitor.Isa

let measure_ecall isa mode =
  let cost = Isa.scale_cost_model isa Cost_model.default in
  let platform = Platform.create ~seed:901L ~cost () in
  let backend =
    Backend.hyperenclave platform ~mode
      ~handlers:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[] ()
  in
  let samples =
    List.init 300 (fun _ ->
        let _, c =
          Cycles.time platform.Platform.clock (fun () ->
              backend.Backend.call ~id:1 ~direction:Edge.In ())
        in
        c)
  in
  backend.Backend.destroy ();
  Util.median samples

let run () =
  Util.banner "Cross-platform projection (Sec. 8)"
    "Empty-ECALL cost under each ISA's mode mapping.  x86 = measured \
     constants; ARM/RISC-V scale the transition primitives by published \
     trap-cost ratios (projection, as the paper defers ports to future \
     work).";
  let rows =
    List.concat_map
      (fun isa ->
        List.map
          (fun mode ->
            [
              Isa.name isa;
              Sgx_types.mode_name mode;
              Isa.secure_mode isa mode;
              Util.cyc (measure_ecall isa mode);
            ])
          Sgx_types.all_modes)
      Isa.all
  in
  Util.print_table ~columns:[ "ISA"; "mode"; "secure mode maps to"; "ECALL" ] rows;
  Util.note
    "\nMonitor runs in: %s / %s / %s.\n"
    (Isa.monitor_mode Isa.X86_64) (Isa.monitor_mode Isa.Armv8)
    (Isa.monitor_mode Isa.Riscv_h)
