(* Figure 8d: Redis latency-throughput curves under YCSB A (Sec. 7.4).

   50k x 1 KB records loaded, then GET/SET at increasing offered rates;
   latency follows an open-loop M/M/1 queue over the measured service
   time and the curve walls up at the saturation rate 1/S.  Paper: max
   throughput relative to baseline — HU 0.89, GU 0.72, SGX 0.48. *)

open Hyperenclave
module Resp_kv = Hyperenclave_workloads.Resp_kv

let records = 30_000 (* paper: 50k; scaled for bench runtime, same shape *)
let samples = 3_000

let service make_backend =
  let backend = make_backend () in
  Resp_kv.load backend ~records;
  let s = Resp_kv.service_time backend ~records ~samples in
  backend.Backend.destroy ();
  s

let run () =
  Util.banner "Figure 8d"
    "Redis (YCSB A) latency vs throughput; paper max-throughput ratios: HU \
     0.89, GU 0.72, SGX 0.48 of baseline.";
  let native () =
    Backend.native ~clock:(Cycles.create ()) ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:41L) ~handlers:(Resp_kv.handlers ())
      ~ocalls:(Resp_kv.ocalls ())
  in
  let hyper mode () =
    let platform = Platform.create ~seed:707L () in
    Backend.hyperenclave platform ~mode ~handlers:(Resp_kv.handlers ())
      ~ocalls:(Resp_kv.ocalls ()) ()
  in
  let sgx () =
    Backend.sgx ~clock:(Cycles.create ()) ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:42L) ~handlers:(Resp_kv.handlers ())
      ~ocalls:(Resp_kv.ocalls ()) ()
  in
  let systems =
    [
      ("baseline", service native);
      ("HU", service (hyper Sgx_types.HU));
      ("GU", service (hyper Sgx_types.GU));
      ("Intel SGX", service sgx);
    ]
  in
  let base_service = List.assoc "baseline" systems in
  let max_kops s = 2.2e9 /. s /. 1000.0 in
  Util.print_table
    ~columns:[ "system"; "service cyc/op"; "max kops/s"; "vs baseline" ]
    (List.map
       (fun (name, s) ->
         [
           name;
           Util.fcyc s;
           Printf.sprintf "%.1f" (max_kops s);
           Printf.sprintf "%.2f" (base_service /. s);
         ])
       systems);
  (* Latency-throughput curves at rising offered load. *)
  let offered =
    List.init 10 (fun i ->
        max_kops base_service *. float_of_int (i + 1) /. 10.0)
  in
  print_newline ();
  Util.print_table
    ~columns:
      ("offered kops/s"
      :: List.map (fun (name, _) -> name ^ " lat us") systems)
    (List.map
       (fun kops ->
         Printf.sprintf "%.1f" kops
         :: List.map
              (fun (_, s) ->
                match
                  Resp_kv.latency_curve ~service_cycles:s ~offered_kops:[ kops ]
                with
                | [ (_, Some latency) ] -> Printf.sprintf "%.1f" latency
                | [ (_, None) ] -> "sat."
                | _ -> "?")
              systems)
       offered)
