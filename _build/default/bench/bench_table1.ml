(* Table 1: latency of SGX primitives (EENTER, EEXIT, ECALL, OCALL) on
   HyperEnclave's three modes vs. Intel SGX, in CPU cycles.

   Methodology mirrors Sec. 7.1: empty edge calls with no explicit
   parameters, median over many runs.  EENTER/EEXIT are measured at the
   emulated-instruction level straight against the monitor (the paper
   could not do this on SGX silicon; neither do we for the SGX model). *)

open Hyperenclave

let iterations = 2000

let measure_mode platform mode =
  let ocall_cycles = ref [] in
  let handlers =
    [
      (1, fun (_ : Backend.env) (_ : bytes) -> Bytes.empty);
      ( 2,
        fun (env : Backend.env) _ ->
          let _, c =
            Cycles.time env.Backend.clock (fun () -> env.Backend.ocall ~id:9 ())
          in
          ocall_cycles := c :: !ocall_cycles;
          Bytes.empty );
    ]
  in
  let backend =
    Backend.hyperenclave platform ~mode ~handlers
      ~ocalls:[ (9, fun _ -> Bytes.empty) ]
      ()
  in
  let ecall_samples =
    List.init iterations (fun _ ->
        let _, c =
          Cycles.time platform.Platform.clock (fun () ->
              backend.Backend.call ~id:1 ~direction:Edge.In ())
        in
        c)
  in
  for _ = 1 to iterations / 4 do
    ignore (backend.Backend.call ~id:2 ~direction:Edge.In ())
  done;
  (* Instruction-level EENTER/EEXIT against the monitor. *)
  let enclave_handle =
    Urts.create ~kmod:platform.Platform.kmod ~proc:platform.Platform.proc
      ~rng:platform.Platform.rng ~signer:platform.Platform.signer
      ~config:{ (Urts.default_config mode) with Urts.code_seed = "t1-raw" }
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  let monitor = Urts.monitor enclave_handle in
  let enclave = Urts.enclave enclave_handle in
  let eenter_samples = ref [] and eexit_samples = ref [] in
  for _ = 1 to iterations do
    match Enclave.free_tcs enclave with
    | None -> failwith "no TCS"
    | Some tcs ->
        let _, enter =
          Cycles.time platform.Platform.clock (fun () ->
              Monitor.eenter monitor enclave ~tcs ~return_va:Urts.aep)
        in
        let _, exit_c =
          Cycles.time platform.Platform.clock (fun () ->
              Monitor.eexit monitor enclave ~target_va:Urts.aep)
        in
        eenter_samples := enter :: !eenter_samples;
        eexit_samples := exit_c :: !eexit_samples
  done;
  backend.Backend.destroy ();
  Urts.destroy enclave_handle;
  ( Util.median !eenter_samples,
    Util.median !eexit_samples,
    Util.median ecall_samples,
    Util.median !ocall_cycles )

let measure_sgx () =
  let clock = Cycles.create () in
  let rng = Rng.create ~seed:77L in
  let ocall_cycles = ref [] in
  let backend =
    Backend.sgx ~clock ~cost:Cost_model.default ~rng
      ~handlers:
        [
          (1, fun _ _ -> Bytes.empty);
          ( 2,
            fun (env : Backend.env) _ ->
              let _, c = Cycles.time clock (fun () -> env.Backend.ocall ~id:9 ()) in
              ocall_cycles := c :: !ocall_cycles;
              Bytes.empty );
        ]
      ~ocalls:[ (9, fun _ -> Bytes.empty) ]
      ()
  in
  let ecall_samples =
    List.init iterations (fun _ ->
        let _, c =
          Cycles.time clock (fun () -> backend.Backend.call ~id:1 ~direction:Edge.In ())
        in
        c)
  in
  for _ = 1 to iterations / 4 do
    ignore (backend.Backend.call ~id:2 ~direction:Edge.In ())
  done;
  (Util.median ecall_samples, Util.median !ocall_cycles)

let run () =
  Util.banner "Table 1" "Latency of SGX primitives (CPU cycles); paper: SGX \
                         ECALL 14,432 / OCALL 12,432; HU 1163/1144/8440/4120, \
                         GU 1704/1319/9480/4920, P 1649/1401/9700/5260.";
  let sgx_ecall, sgx_ocall = measure_sgx () in
  let rows =
    [
      [ "Intel SGX"; "-"; "-"; Util.cyc sgx_ecall; Util.cyc sgx_ocall ];
    ]
    @ List.map
        (fun mode ->
          let platform = Platform.create ~seed:101L () in
          let eenter, eexit, ecall, ocall = measure_mode platform mode in
          [
            Sgx_types.mode_name mode;
            Util.cyc eenter;
            Util.cyc eexit;
            Util.cyc ecall;
            Util.cyc ocall;
          ])
        [ Sgx_types.HU; Sgx_types.GU; Sgx_types.P ]
  in
  Util.print_table ~columns:[ ""; "EENTER"; "EEXIT"; "ECALL"; "OCALL" ] rows
