(* hyperenclave_cli: poke at the simulated platform from the shell.

   Subcommands:
     boot     bring a platform up and print the measured-boot state
     attest   generate a quote and verify it against golden values
     modes    print the world-switch cost table for the three modes
     run      run a workload on a chosen backend and print cycle costs
     stats    run an EPC-pressure demo and dump the telemetry snapshot

   Examples:
     dune exec bin/hyperenclave_cli.exe -- boot --seed 7
     dune exec bin/hyperenclave_cli.exe -- run --workload sqlite --backend hu
     dune exec bin/hyperenclave_cli.exe -- attest --tamper kernel
     dune exec bin/hyperenclave_cli.exe -- stats --json *)

open Hyperenclave
open Cmdliner

let verbose_arg =
  let doc = "Print RustMonitor event logs (launch, EINIT, violations)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let seed_arg =
  let doc = "Deterministic platform seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

(* --- boot ------------------------------------------------------------------- *)

let boot_cmd =
  let run verbose seed =
    setup_logs verbose;
    let p = Platform.create ~seed:(Int64.of_int seed) () in
    Printf.printf "platform seed %d\n" seed;
    Printf.printf "RustMonitor launched: %b\n" (Monitor.launched p.Platform.monitor);
    let base, n = Monitor.reserved_range p.Platform.monitor in
    Printf.printf "reserved region: frames [%#x, %#x) (%d MiB)\n" base (base + n)
      (n * 4096 / 1024 / 1024);
    Printf.printf "EPC free frames: %d\n"
      (Epc.free_count (Monitor.epc p.Platform.monitor));
    print_endline "measured boot event log:";
    List.iter
      (fun (e : Monitor.boot_event) ->
        Printf.printf "  PCR[%2d] %-10s %s\n" e.Monitor.pcr_index e.Monitor.label
          (String.sub (Sha256.to_hex e.Monitor.measurement) 0 32))
      (Monitor.boot_log p.Platform.monitor);
    Printf.printf "simulated boot cost: %d cycles\n" (Cycles.now p.Platform.clock)
  in
  Cmd.v (Cmd.info "boot" ~doc:"Boot a platform and print its measured state.")
    Term.(const run $ verbose_arg $ seed_arg)

(* --- modes ------------------------------------------------------------------ *)

let modes_cmd =
  let run () =
    let c = Cost_model.default in
    Printf.printf "%-12s %8s %8s %8s %8s %8s\n" "mode" "EENTER" "EEXIT" "AEX"
      "ERESUME" "ECALL";
    List.iter
      (fun mode ->
        Printf.printf "%-12s %8d %8d %8d %8d %8d\n" (Sgx_types.mode_name mode)
          (World_switch.eenter_cost c mode)
          (World_switch.eexit_cost c mode)
          (World_switch.aex_cost c mode)
          (World_switch.eresume_cost c mode)
          (World_switch.eenter_cost c mode + World_switch.eexit_cost c mode
          + World_switch.sdk_ecall_soft c mode))
      Sgx_types.all_modes;
    Printf.printf "%-12s %8s %8s %8s %8s %8d  (measured, Table 1)\n" "Intel SGX"
      "-" "-" "-" "-" c.Cost_model.sgx_ecall
  in
  Cmd.v
    (Cmd.info "modes"
       ~doc:"Print world-switch costs for GU/HU/P enclaves (cycles).")
    Term.(const run $ const ())

(* --- attest ----------------------------------------------------------------- *)

let attest_cmd =
  let tamper =
    let doc = "Tamper with the named boot component (crtm|bios|grub|kernel|initramfs)." in
    Arg.(value & opt (some string) None & info [ "tamper" ] ~docv:"COMPONENT" ~doc)
  in
  let run seed tamper =
    (* Golden values always come from the untampered build. *)
    let reference = Platform.create ~seed:(Int64.of_int seed) () in
    let make_enclave p =
      Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
        ~signer:p.Platform.signer
        ~config:(Urts.default_config Sgx_types.GU)
        ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
        ~ocalls:[]
    in
    let reference_enclave = make_enclave reference in
    let golden =
      Verifier.golden_of_boot_log
        ~ek_public:(Tpm.ek_public reference.Platform.tpm)
        (Monitor.boot_log reference.Platform.monitor)
    in
    let subject, subject_enclave =
      match tamper with
      | None -> (reference, reference_enclave)
      | Some name ->
          let p = Platform.create ~seed:(Int64.of_int seed) ~tamper_boot:name () in
          (p, make_enclave p)
    in
    ignore subject;
    let nonce = Bytes.of_string "cli-nonce" in
    let quote = Urts.gen_quote subject_enclave ~report_data:nonce ~nonce in
    Printf.printf "MRENCLAVE: %s\n" (Sha256.to_hex (Urts.mrenclave subject_enclave));
    Printf.printf "hapk:      %s\n" (Sha256.to_hex quote.Monitor.hapk);
    let policy =
      {
        Verifier.expected_mrenclave = Some (Urts.mrenclave reference_enclave);
        expected_mrsigner = None;
        allow_debug = false;
      }
    in
    match Verifier.verify ~golden ~policy ~nonce quote with
    | Verifier.Ok _ -> print_endline "verification: OK"
    | Verifier.Error failure ->
        Format.printf "verification: FAILED — %a@." Verifier.pp_failure failure;
        exit 1
  in
  Cmd.v
    (Cmd.info "attest"
       ~doc:"Generate a HyperEnclave quote and verify the full chain.")
    Term.(const run $ seed_arg $ tamper)

(* --- run -------------------------------------------------------------------- *)

type backend_choice = Native | Gu | Hu | P | Sgx_b

let backend_conv =
  Arg.enum
    [ ("native", Native); ("gu", Gu); ("hu", Hu); ("p", P); ("sgx", Sgx_b) ]

let make_backend choice ~handlers ~ocalls =
  match choice with
  | Native ->
      Backend.native ~clock:(Cycles.create ()) ~cost:Cost_model.default
        ~rng:(Rng.create ~seed:1L) ~handlers ~ocalls
  | Sgx_b ->
      Backend.sgx ~clock:(Cycles.create ()) ~cost:Cost_model.default
        ~rng:(Rng.create ~seed:2L) ~handlers ~ocalls ()
  | Gu | Hu | P ->
      let mode =
        match choice with
        | Gu -> Sgx_types.GU
        | Hu -> Sgx_types.HU
        | P -> Sgx_types.P
        | Native | Sgx_b -> assert false
      in
      let p = Platform.create ~seed:99L () in
      Backend.hyperenclave p ~mode ~handlers ~ocalls ()

let run_cmd =
  let module W = Workloads in
  let workload_conv =
    Arg.enum
      [ ("nbench", `Nbench); ("sqlite", `Sqlite); ("httpd", `Httpd); ("redis", `Redis) ]
  in
  let workload_arg =
    Arg.(
      value
      & opt workload_conv `Nbench
      & info [ "workload" ] ~docv:"NAME" ~doc:"nbench|sqlite|httpd|redis")
  in
  let backend_arg =
    Arg.(
      value
      & opt backend_conv Native
      & info [ "backend" ] ~docv:"BACKEND" ~doc:"native|gu|hu|p|sgx")
  in
  let run workload choice =
    match workload with
    | `Nbench ->
        let backend = make_backend choice ~handlers:(W.Nbench.handlers ()) ~ocalls:[] in
        List.iter
          (fun (name, cycles) -> Printf.printf "%-18s %12d cycles\n" name cycles)
          (W.Nbench.run_suite backend ~iterations:3);
        backend.Backend.destroy ()
    | `Sqlite ->
        let backend = make_backend choice ~handlers:(W.Kvdb.handlers ()) ~ocalls:[] in
        let records = 20_000 and ops = 5_000 in
        ignore (W.Kvdb.load backend ~records);
        let cycles = W.Kvdb.run_ops backend ~records ~ops in
        Printf.printf "%d YCSB-A ops in %d cycles = %.1f kops/s\n" ops cycles
          (W.Kvdb.throughput_kops ~cycles ~ops);
        backend.Backend.destroy ()
    | `Httpd ->
        let pages = [ ("/index.html", 16384) ] in
        let backend =
          make_backend choice ~handlers:(W.Httpd.handlers ~pages)
            ~ocalls:(W.Httpd.ocalls ())
        in
        let cycles = W.Httpd.serve backend ~path:"/index.html" in
        Printf.printf "16 KB page served in %d cycles = %.0f req/s\n" cycles
          (W.Httpd.throughput_rps ~cycles_per_request:(float_of_int cycles));
        backend.Backend.destroy ()
    | `Redis ->
        let backend =
          make_backend choice ~handlers:(W.Resp_kv.handlers ())
            ~ocalls:(W.Resp_kv.ocalls ())
        in
        W.Resp_kv.load backend ~records:2000;
        let s = W.Resp_kv.service_time backend ~records:2000 ~samples:1000 in
        Printf.printf "service time %.0f cycles/op = %.1f kops/s max\n" s
          (2.2e9 /. s /. 1000.0);
        backend.Backend.destroy ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload on a chosen backend.")
    Term.(const run $ workload_arg $ backend_arg)

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let json_arg =
    let doc = "Emit the snapshot as JSON instead of the human rendering." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run verbose seed json =
    setup_logs verbose;
    (* A demo run sized to exercise every instrumented path: 2 MiB of EPC
       (512 frames) against a 700-page working set forces demand commits,
       evictions and swap-ins; the echo ECALL and its OCALL cover the SDK
       legs. *)
    let p =
      Platform.create ~seed:(Int64.of_int seed) ~phys_mb:134 ~os_mb:128
        ~monitor_mb:4 ()
    in
    let handle =
      Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
        ~signer:p.Platform.signer
        ~config:
          { (Urts.default_config Sgx_types.GU) with Urts.elrange_pages = 2048 }
        ~ecalls:
          [
            ( 1,
              fun (tenv : Tenv.t) _ ->
                let pages = 700 in
                let base = tenv.Tenv.malloc (pages * 4096) in
                for i = 0 to pages - 1 do
                  tenv.Tenv.write ~va:(base + (i * 4096))
                    (Bytes.of_string (Printf.sprintf "page-%04d" i))
                done;
                for i = 0 to pages - 1 do
                  ignore (tenv.Tenv.read ~va:(base + (i * 4096)) ~len:9)
                done;
                Bytes.empty );
            ( 2,
              fun (tenv : Tenv.t) input ->
                tenv.Tenv.ocall ~id:1 ~data:input Edge.In_out );
          ]
        ~ocalls:[ (1, fun request -> Bytes.cat request request) ]
    in
    ignore (Urts.ecall handle ~id:1 ~direction:Edge.User_check ());
    ignore
      (Urts.ecall handle ~id:2
         ~data:(Bytes.of_string "telemetry-demo")
         ~direction:Edge.In_out ());
    Urts.destroy handle;
    let snap = Telemetry.snapshot (Monitor.telemetry p.Platform.monitor) in
    if json then print_endline (Telemetry.to_json snap)
    else begin
      Printf.printf "telemetry after demo run (seed %d):\n" seed;
      Format.printf "%a@." Telemetry.pp snap
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run an EPC-pressure demo and dump the monitor telemetry snapshot.")
    Term.(const run $ verbose_arg $ seed_arg $ json_arg)

(* --- sign ------------------------------------------------------------------ *)

let sign_cmd =
  (* The sgx_sign equivalent: predict MRENCLAVE for a build configuration
     and print the SIGSTRUCT summary a vendor would ship. *)
  let code_seed_arg =
    Arg.(
      value
      & opt string "hyperenclave-default-app"
      & info [ "code" ] ~docv:"SEED" ~doc:"Code identity seed.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("gu", Sgx_types.GU); ("hu", Sgx_types.HU); ("p", Sgx_types.P) ])
          Sgx_types.GU
      & info [ "mode" ] ~docv:"MODE" ~doc:"gu|hu|p")
  in
  let run seed code_seed mode =
    let p = Platform.create ~seed:(Int64.of_int seed) () in
    let handle =
      Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
        ~signer:p.Platform.signer
        ~config:{ (Urts.default_config mode) with Urts.code_seed }
        ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
        ~ocalls:[]
    in
    let enclave = Urts.enclave handle in
    Printf.printf "code identity : %s\n" code_seed;
    Printf.printf "mode          : %s\n" (Sgx_types.mode_name mode);
    Printf.printf "MRENCLAVE     : %s\n" (Sha256.to_hex (Urts.mrenclave handle));
    Printf.printf "MRSIGNER      : %s\n" (Sha256.to_hex enclave.Enclave.mrsigner);
    Printf.printf "ISV prod/svn  : %d / %d\n" enclave.Enclave.isv_prod_id
      enclave.Enclave.isv_svn;
    Urts.destroy handle
  in
  Cmd.v
    (Cmd.info "sign"
       ~doc:"Predict MRENCLAVE for a build configuration (sgx_sign analogue).")
    Term.(const run $ seed_arg $ code_seed_arg $ mode_arg)

let () =
  let doc = "HyperEnclave reproduction command-line tool" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "hyperenclave_cli" ~version:"1.0.0" ~doc)
          [ boot_cmd; modes_cmd; attest_cmd; run_cmd; sign_cmd; stats_cmd ]))
