(* Fleet-scale serving with live enclave migration: four independent
   platforms — four TPMs, four measured boots, four monitors — behind a
   consistent-hash load balancer, with a tenant moved live between
   monitors while a client keeps calling on the same AEAD session.

   Run with: dune exec examples/fleet_migration.exe *)

open Hyperenclave

let tenant_gen () =
  {
    (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
    Backend.handlers =
      [
        ( 1,
          fun _env input ->
            Bytes.of_string (String.uppercase_ascii (Bytes.to_string input)) );
      ];
  }

let call c text =
  match Cluster.Client.call c [ (1, Bytes.of_string text) ] with
  | Ok [ Ok reply ] ->
      Printf.printf "  node %d: %S -> %S\n" (Cluster.Client.node_id c) text
        (Bytes.to_string reply)
  | Ok _ -> failwith "unexpected reply shape"
  | Error e -> Format.kasprintf failwith "call failed: %a" Cluster.pp_error e

let () =
  (* --- boot the fleet: every node is its own trust domain --- *)
  let cl = Cluster.create Cluster.default_config in
  List.iter
    (fun n ->
      let a = Cluster.anchor cl (Cluster.Node.id n) in
      Printf.printf "node %d booted, hapk %s...\n" (Cluster.Node.id n)
        (String.concat ""
           (List.map (Printf.sprintf "%02x")
              (List.init 4 (Bytes.get_uint8 a.Cluster.a_hapk)))))
    (Cluster.nodes cl);

  (* --- the LB places the tenant; the client attests to its owner --- *)
  let owner = Cluster.add_tenant cl ~name:"acme" tenant_gen in
  Printf.printf "tenant \"acme\" placed on node %d\n" owner;
  let c =
    match
      Cluster.Client.connect cl ~rng:(Rng.create ~seed:2L) ~tenant:"acme" ()
    with
    | Ok c -> c
    | Error e -> Format.kasprintf failwith "connect: %a" Cluster.pp_error e
  in
  Printf.printf "client attested, session %d on node %d\n"
    (Cluster.Client.session_id c) (Cluster.Client.node_id c);
  call c "hello from the fleet";

  (* --- live migration: seal under the source TPM hierarchy, ship,
     re-attest under the destination monitor's hapk, resume --- *)
  let dst = (owner + 1) mod 4 in
  (match Cluster.migrate cl ~tenant:"acme" ~dst with
  | Ok n -> Printf.printf "migrated %d live session(s) to node %d\n" n dst
  | Error e -> Format.kasprintf failwith "migrate: %a" Cluster.pp_error e);

  (* Same session, same keys — the client chases the typed forward. *)
  call c "still the same session";
  assert (Cluster.Client.node_id c = dst);

  (* --- rolling monitor upgrade under live traffic --- *)
  (match Cluster.rolling_upgrade cl with
  | Ok () -> print_endline "rolling upgrade complete, every monitor rebuilt"
  | Error e -> Format.kasprintf failwith "upgrade: %a" Cluster.pp_error e);
  call c "served by the new build";

  (* --- fleet health: every live monitor's invariants --- *)
  let findings =
    List.concat_map (fun (_, fs) -> fs) (Cluster.check cl)
  in
  Printf.printf "fleet invariants: %s\n"
    (if findings = [] then "green on every node" else "VIOLATIONS");
  let s = Cluster.stats cl in
  Printf.printf "%d migrations, worst pause %d cycles\n" s.Cluster.migrations
    s.Cluster.max_pause;
  Cluster.destroy cl;
  if findings <> [] then exit 1
