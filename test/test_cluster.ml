(* Fleet-scale serving: the multi-monitor cluster, the deterministic
   network, the consistent-hash LB tier, and — the headline — live
   enclave migration with cross-monitor re-attestation.  The negative
   paths mirror the attack corpus discipline: every tampered, replayed
   or mis-routed migration message must die with a typed refusal while
   the monitor invariants stay green on every live node. *)

open Hyperenclave

let upper input = Bytes.of_string (String.uppercase_ascii (Bytes.to_string input))

let tenant_gen () =
  {
    (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
    Backend.handlers =
      [ (1, fun _env input -> input); (2, fun _env input -> upper input) ];
  }

let build ?(nodes = 4) ?(seed = 9000L) ?(net = Netsim.default_config) () =
  let cl =
    Cluster.create { Cluster.default_config with Cluster.nodes; seed; net }
  in
  let owner = Cluster.add_tenant cl ~name:"acme" tenant_gen in
  (cl, owner)

let connect ?(seed = 1L) cl =
  match Cluster.Client.connect cl ~rng:(Rng.create ~seed) ~tenant:"acme" () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect failed: %a" Cluster.pp_error e

let call_ok c reqs =
  match Cluster.Client.call c reqs with
  | Error e -> Alcotest.failf "call failed: %a" Cluster.pp_error e
  | Ok replies ->
      List.map
        (function
          | Ok b -> b
          | Error r -> Alcotest.failf "request rejected: %a" Serve.pp_reject r)
        replies

let assert_green cl =
  List.iter
    (fun (node, findings) ->
      Alcotest.(check int)
        (Printf.sprintf "node %d invariants green" node)
        0
        (List.length findings))
    (Cluster.check cl)

let other cl n =
  match List.find_opt (fun m -> Cluster.Node.id m <> n) (Cluster.nodes cl) with
  | Some m -> Cluster.Node.id m
  | None -> Alcotest.fail "need at least two nodes"

let migrate_ok cl ~tenant ~dst =
  match Cluster.migrate cl ~tenant ~dst with
  | Ok n -> n
  | Error e -> Alcotest.failf "migrate failed: %a" Cluster.pp_error e

(* ---------------------------------------------------------------- *)

(* The headline demo: an enclave serving an active AEAD session is
   sealed on its owner, shipped across the simulated network,
   re-attested under the destination monitor's hapk and resumed — the
   client keeps calling through the cutover on the same session, with
   the same keys and sequence cursor, and both monitors stay green. *)
let test_live_migration () =
  let cl, src = build () in
  let c = connect cl in
  Alcotest.(check int) "affinity = owner" src (Cluster.Client.node_id c);
  let sid = Cluster.Client.session_id c in
  let r1 = call_ok c [ (2, Bytes.of_string "before") ] in
  Alcotest.(check string) "pre-move reply" "BEFORE"
    (Bytes.to_string (List.hd r1));
  let dst = other cl src in
  let moved = migrate_ok cl ~tenant:"acme" ~dst in
  Alcotest.(check bool) "session moved" true (moved >= 1);
  Alcotest.(check int) "placement cut over" dst (Cluster.owner cl ~tenant:"acme");
  (* The client still believes it talks to [src]: the next batch hits
     the stale source, gets the typed forward, and completes on the
     destination without a new handshake. *)
  let r2 = call_ok c [ (2, Bytes.of_string "after"); (1, Bytes.of_string "raw") ] in
  Alcotest.(check string) "post-move reply" "AFTER" (Bytes.to_string (List.nth r2 0));
  Alcotest.(check string) "post-move echo" "raw" (Bytes.to_string (List.nth r2 1));
  Alcotest.(check int) "chased to destination" dst (Cluster.Client.node_id c);
  Alcotest.(check int) "session id survives" sid (Cluster.Client.session_id c);
  let s = Cluster.stats cl in
  Alcotest.(check int) "one migration" 1 s.Cluster.migrations;
  Alcotest.(check bool) "pause accounted" true (s.Cluster.max_pause > 0);
  assert_green cl;
  Cluster.destroy cl

(* Migrate back home: forwarding addresses are cleared on import, so a
   round trip is legal and the client chases both hops. *)
let test_migrate_back () =
  let cl, src = build () in
  let c = connect cl in
  let dst = other cl src in
  ignore (migrate_ok cl ~tenant:"acme" ~dst : int);
  let _ = call_ok c [ (1, Bytes.of_string "hop1") ] in
  ignore (migrate_ok cl ~tenant:"acme" ~dst:src : int);
  let r = call_ok c [ (2, Bytes.of_string "home") ] in
  Alcotest.(check string) "round trip" "HOME" (Bytes.to_string (List.hd r));
  Alcotest.(check int) "back on the source" src (Cluster.Client.node_id c);
  assert_green cl;
  Cluster.destroy cl

(* ---------------------------------------------------------------- *)
(* Negative paths: the migration protocol under attack.              *)

let offer_ok cl ~src ~dst =
  match Cluster.Migrate.offer cl ~tenant:"acme" ~src ~dst with
  | Ok o -> o
  | Error e -> Alcotest.failf "offer failed: %a" Cluster.pp_error e

let seal_ok cl o =
  match Cluster.Migrate.seal cl o with
  | Ok p -> p
  | Error e -> Alcotest.failf "seal failed: %a" Cluster.pp_error e

(* Sealed blob tampered in transit: one flipped ciphertext bit must
   surface as a transport authentication failure, and nothing may have
   been installed. *)
let test_blob_tamper () =
  let cl, src = build () in
  let c = connect cl in
  let _ = call_ok c [ (1, Bytes.of_string "live") ] in
  let dst = other cl src in
  let o = offer_ok cl ~src ~dst in
  let p = seal_ok cl o in
  let blob = Bytes.copy p.Cluster.Migrate.p_blob in
  let i = Bytes.length blob / 2 in
  Bytes.set_uint8 blob i (Bytes.get_uint8 blob i lxor 0x40);
  (match Cluster.Migrate.install cl { p with Cluster.Migrate.p_blob = blob } with
  | Error (Cluster.Transport_auth | Cluster.Blob_malformed _) -> ()
  | Error e -> Alcotest.failf "wrong refusal: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "tampered blob accepted");
  (* The offer is burnt even by the failed install; the genuine package
     must now be refused too — no second chance for an attacker holding
     the real bytes. *)
  (match Cluster.Migrate.install cl p with
  | Error Cluster.Unknown_offer -> ()
  | Error e -> Alcotest.failf "wrong refusal on replay: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "burnt offer accepted");
  (* Tenant never moved: the client still works against the source. *)
  let r = call_ok c [ (2, Bytes.of_string "still here") ] in
  Alcotest.(check string) "source still serves" "STILL HERE"
    (Bytes.to_string (List.hd r));
  Alcotest.(check int) "placement unchanged" src (Cluster.owner cl ~tenant:"acme");
  assert_green cl;
  Cluster.destroy cl

(* Replay and mis-routing: a package is bound to the one offer that
   produced it.  Install twice → the second is refused; redirect the
   package to a node that never offered → refused. *)
let test_replay_and_misroute () =
  let cl, src = build () in
  let c = connect cl in
  let _ = call_ok c [ (1, Bytes.of_string "x") ] in
  let dst = other cl src in
  let o = offer_ok cl ~src ~dst in
  let p = seal_ok cl o in
  (* Mis-route first (the offer must survive this): aim the package at
     a third node.  Its AAD still names [dst], but the third node has
     no pending offer for this nonce. *)
  let third =
    match
      List.find_opt
        (fun n ->
          let id = Cluster.Node.id n in
          id <> src && id <> dst)
        (Cluster.nodes cl)
    with
    | Some n -> Cluster.Node.id n
    | None -> Alcotest.fail "need three nodes"
  in
  (match Cluster.Migrate.install cl { p with Cluster.Migrate.p_dst = third } with
  | Error Cluster.Unknown_offer -> ()
  | Error e -> Alcotest.failf "wrong refusal: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "mis-routed package accepted");
  (* Route tamper: keep the destination honest but lie about the
     source.  The offer is found, the key agrees — the AAD refuses. *)
  (match
     Cluster.Migrate.install cl { p with Cluster.Migrate.p_src = src + 100 }
   with
  | Error Cluster.Binding_mismatch -> ()
  | Error e -> Alcotest.failf "wrong refusal: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "src-tampered package accepted");
  (* The burn rule again: the src tamper consumed the offer. *)
  (match Cluster.Migrate.install cl p with
  | Error Cluster.Unknown_offer -> ()
  | Error e -> Alcotest.failf "wrong refusal: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "replayed package accepted");
  assert_green cl;
  Cluster.destroy cl

(* A full successful install, then the same genuine package replayed:
   one offer admits exactly one blob. *)
let test_replay_after_success () =
  let cl, src = build () in
  let c = connect cl in
  let _ = call_ok c [ (1, Bytes.of_string "x") ] in
  let dst = other cl src in
  let o = offer_ok cl ~src ~dst in
  let p = seal_ok cl o in
  (match Cluster.Migrate.install cl p with
  | Ok n -> Alcotest.(check bool) "installed" true (n >= 1)
  | Error e -> Alcotest.failf "install failed: %a" Cluster.pp_error e);
  (match Cluster.Migrate.install cl p with
  | Error Cluster.Unknown_offer -> ()
  | Error e -> Alcotest.failf "wrong refusal: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "replayed package accepted");
  assert_green cl;
  Cluster.destroy cl

(* Resume against the stale source after cutover: every route to the
   old node answers with a typed forward, never a crash and never
   service. *)
let test_stale_source () =
  let cl, src = build () in
  let c = connect cl in
  let sid = Cluster.Client.session_id c in
  let _ = call_ok c [ (1, Bytes.of_string "x") ] in
  let dst = other cl src in
  ignore (migrate_ok cl ~tenant:"acme" ~dst : int);
  let stale = Cluster.plane cl src in
  (* A fresh handshake against the stale source. *)
  let probe =
    Serve.Client.create
      ~rng:(Rng.create ~seed:77L)
      ~golden:(Cluster.anchor cl src).Cluster.a_golden
      ~policy:
        { Verifier.expected_mrenclave = None; expected_mrsigner = None;
          allow_debug = false }
      ()
  in
  (match Serve.handshake stale ~tenant:"acme" (Serve.Client.hello probe) with
  | Error (Serve.Tenant_migrated { to_node; _ }) ->
      Alcotest.(check int) "forward names the destination" dst to_node
  | Error r -> Alcotest.failf "wrong refusal: %a" Serve.pp_reject r
  | Ok _ -> Alcotest.fail "stale source accepted a handshake");
  (* The migrated session's id is a forwarding address on the source. *)
  (match Serve.close_session stale ~session:sid with
  | Error (Serve.Session_migrated { to_node }) ->
      Alcotest.(check int) "session forward" dst to_node
  | Error r -> Alcotest.failf "wrong refusal: %a" Serve.pp_reject r
  | Ok () -> Alcotest.fail "stale source closed a migrated session");
  assert_green cl;
  Cluster.destroy cl

(* Migration mid-flush: while admitted requests are staged in the
   rings, export must refuse with the typed busy error and the staged
   work must still complete afterwards. *)
let test_migrate_mid_flush () =
  let cl, src = build () in
  let plane = Cluster.plane cl src in
  let a = Cluster.anchor cl src in
  let sc =
    Serve.Client.create
      ~rng:(Rng.create ~seed:5L)
      ~golden:a.Cluster.a_golden
      ~policy:
        { Verifier.expected_mrenclave = None; expected_mrsigner = None;
          allow_debug = false }
      ~expected_hapk:a.Cluster.a_hapk ()
  in
  (match Serve.handshake plane ~tenant:"acme" (Serve.Client.hello sc) with
  | Error r -> Alcotest.failf "handshake: %a" Serve.pp_reject r
  | Ok accept -> (
      match Serve.Client.establish sc accept with
      | Error r -> Alcotest.failf "establish: %a" Serve.pp_reject r
      | Ok () -> ()));
  let req = Serve.Client.request sc ~ecall:2 (Bytes.of_string "staged") in
  (match Serve.submit plane req with
  | Ok () -> ()
  | Error r -> Alcotest.failf "submit: %a" Serve.pp_reject r);
  let dst = other cl src in
  (match Cluster.migrate cl ~tenant:"acme" ~dst with
  | Error (Cluster.Reject (Serve.Tenant_busy { staged; _ })) ->
      Alcotest.(check bool) "staged count" true (staged >= 1)
  | Error e -> Alcotest.failf "wrong refusal: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "migrated with staged requests");
  let replies = Serve.flush plane in
  Alcotest.(check int) "staged request served" 1 (List.length replies);
  (match Serve.Client.read_reply sc (List.hd replies) with
  | Ok b -> Alcotest.(check string) "reply intact" "STAGED" (Bytes.to_string b)
  | Error r -> Alcotest.failf "reply rejected: %a" Serve.pp_reject r);
  (* Drained: now the move goes through. *)
  ignore (migrate_ok cl ~tenant:"acme" ~dst : int);
  assert_green cl;
  Cluster.destroy cl

(* ---------------------------------------------------------------- *)

(* Equal seeds give bit-equal fleets: same placements, same delivery
   schedules, same migration outcomes. *)
let test_determinism () =
  let run () =
    let cl, src = build ~net:{ Netsim.default_config with Netsim.jitter = 4_000 } () in
    let c = connect cl in
    let _ = call_ok c [ (1, Bytes.of_string "a"); (2, Bytes.of_string "b") ] in
    let dst = other cl src in
    ignore (migrate_ok cl ~tenant:"acme" ~dst : int);
    let _ = call_ok c [ (2, Bytes.of_string "c") ] in
    let net = Netsim.stats (Cluster.net cl) in
    let s = Cluster.stats cl in
    let summary =
      ( src,
        dst,
        net.Netsim.sent,
        net.Netsim.delivered,
        net.Netsim.bytes_moved,
        net.Netsim.cycles_charged,
        s.Cluster.migration_cycles )
    in
    Cluster.destroy cl;
    summary
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "equal seeds, equal schedules" true (a = b)

(* Packet loss: the migration driver retries through drops; past the
   retry budget it fails typed, with no partial cutover. *)
let test_lossy_network () =
  (* ~30% loss with 3 retries per message: overwhelmingly likely to
     need at least one retry over the run, deterministically seeded. *)
  let cl, src =
    build ~net:{ Netsim.default_config with Netsim.loss_per_mille = 300 } ()
  in
  let c = connect cl in
  let _ = call_ok c [ (1, Bytes.of_string "x") ] in
  let dst = other cl src in
  ignore (migrate_ok cl ~tenant:"acme" ~dst : int);
  let r = call_ok c [ (2, Bytes.of_string "through loss") ] in
  Alcotest.(check string) "served through loss" "THROUGH LOSS"
    (Bytes.to_string (List.hd r));
  let net = Netsim.stats (Cluster.net cl) in
  Alcotest.(check bool) "drops happened" true (net.Netsim.dropped > 0);
  assert_green cl;
  Cluster.destroy cl

(* The LB tier: deterministic consistent-hash sharding, stable under
   re-query, and spread across nodes at reasonable tenant counts. *)
let test_lb_sharding () =
  let cl = Cluster.create Cluster.default_config in
  let seen = Hashtbl.create 4 in
  for i = 0 to 31 do
    let name = Printf.sprintf "tenant-%d" i in
    let o = Cluster.add_tenant cl ~name tenant_gen in
    Alcotest.(check int)
      (name ^ " owner stable") o
      (Cluster.owner cl ~tenant:name);
    Hashtbl.replace seen o ()
  done;
  Alcotest.(check bool)
    "32 tenants spread over >= 3 of 4 nodes" true
    (Hashtbl.length seen >= 3);
  Cluster.destroy cl

(* ---------------------------------------------------------------- *)

(* Rolling monitor upgrade: every node drained live, rebuilt, and
   refilled in turn; the client's session survives the whole sweep and
   every monitor version ticks. *)
let test_rolling_upgrade () =
  let cl, _ = build () in
  let c = connect cl in
  let sid = Cluster.Client.session_id c in
  let _ = call_ok c [ (1, Bytes.of_string "pre") ] in
  (match Cluster.rolling_upgrade cl with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rolling upgrade failed: %a" Cluster.pp_error e);
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "node %d upgraded" (Cluster.Node.id n))
        1 (Cluster.Node.version n))
    (Cluster.nodes cl);
  let r = call_ok c [ (2, Bytes.of_string "post upgrade") ] in
  Alcotest.(check string) "session survived the sweep" "POST UPGRADE"
    (Bytes.to_string (List.hd r));
  Alcotest.(check int) "same session id" sid (Cluster.Client.session_id c);
  let s = Cluster.stats cl in
  Alcotest.(check bool) "upgrade migrations counted" true (s.Cluster.migrations >= 2);
  assert_green cl;
  Cluster.destroy cl

(* Node-kill failover under the chaos plane: the owner dies mid-life,
   the LB repoints to the ring's next live node, the client re-attests
   there and resumes service; transient faults injected at the
   migration site are absorbed by the retry path during a follow-up
   live migration.  Fleet invariants green throughout. *)
let test_kill_failover_chaos () =
  let cl, src = build () in
  let c = connect cl in
  let _ = call_ok c [ (1, Bytes.of_string "alive") ] in
  Cluster.kill_node cl src;
  Alcotest.(check bool) "owner dead" false
    (Cluster.Node.alive (Cluster.node cl src));
  (match Cluster.route cl ~tenant:"acme" with
  | Error (Cluster.Node_down n) -> Alcotest.(check int) "LB sees the dead owner" src n
  | Error e -> Alcotest.failf "wrong route error: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "routed to a dead node");
  let dst =
    match Cluster.failover cl ~tenant:"acme" with
    | Ok d -> d
    | Error e -> Alcotest.failf "failover failed: %a" Cluster.pp_error e
  in
  Alcotest.(check bool) "failed over elsewhere" true (dst <> src);
  (* Crash recovery loses sessions by design — reconnect, then serve. *)
  (match Cluster.Client.reconnect c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reconnect failed: %a" Cluster.pp_error e);
  let r = call_ok c [ (2, Bytes.of_string "failover") ] in
  Alcotest.(check string) "served after failover" "FAILOVER"
    (Bytes.to_string (List.hd r));
  (* Revive the old node and migrate home through injected transient
     faults at the migration site: with_retries must absorb them. *)
  Cluster.revive_node cl src;
  Fault.install
    [ { Fault.site = "cluster.migrate"; nth = 1; kind = Fault.Transient } ];
  let moved =
    match Cluster.migrate cl ~tenant:"acme" ~dst:src with
    | Ok n -> n
    | Error e -> Alcotest.failf "migrate through chaos failed: %a" Cluster.pp_error e
  in
  Alcotest.(check bool) "fault fired" true (Fault.injected_count () >= 1);
  Fault.clear ();
  Alcotest.(check bool) "sessions moved home" true (moved >= 1);
  let r2 = call_ok c [ (1, Bytes.of_string "home again") ] in
  Alcotest.(check string) "served at home" "home again"
    (Bytes.to_string (List.hd r2));
  assert_green cl;
  Cluster.destroy cl

(* A permanent fault at the migration site is a typed migration
   failure; the tenant stays where it was and keeps serving. *)
let test_permanent_migration_fault () =
  let cl, src = build () in
  let c = connect cl in
  let _ = call_ok c [ (1, Bytes.of_string "x") ] in
  let dst = other cl src in
  Fault.install
    [ { Fault.site = "cluster.migrate"; nth = 1; kind = Fault.Permanent } ];
  (match Cluster.migrate cl ~tenant:"acme" ~dst with
  | Error (Cluster.Migration_fault _) -> ()
  | Error e -> Alcotest.failf "wrong failure: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "migrated through a permanent fault");
  Fault.clear ();
  Alcotest.(check int) "placement unchanged" src (Cluster.owner cl ~tenant:"acme");
  let r = call_ok c [ (2, Bytes.of_string "still serving") ] in
  Alcotest.(check string) "still serving" "STILL SERVING"
    (Bytes.to_string (List.hd r));
  assert_green cl;
  Cluster.destroy cl

(* The singleton shim: a one-node cluster over an existing platform
   keeps single-node callers on the node-addressed API. *)
let test_singleton () =
  let p = Platform.create ~seed:4242L () in
  let cl = Cluster.singleton ~platform:p () in
  let o = Cluster.add_tenant cl ~name:"acme" tenant_gen in
  Alcotest.(check int) "only node owns" 0 o;
  let c = connect cl in
  Alcotest.(check int) "node 0 affinity" 0 (Cluster.Client.node_id c);
  let r = call_ok c [ (2, Bytes.of_string "solo") ] in
  Alcotest.(check string) "singleton serves" "SOLO" (Bytes.to_string (List.hd r));
  assert_green cl;
  Cluster.destroy cl

let suite =
  [
    Alcotest.test_case "live migration: seal, ship, re-attest, resume" `Quick
      test_live_migration;
    Alcotest.test_case "migrate back home" `Quick test_migrate_back;
    Alcotest.test_case "sealed blob tampered in transit" `Quick test_blob_tamper;
    Alcotest.test_case "package replayed / mis-routed" `Quick
      test_replay_and_misroute;
    Alcotest.test_case "replay after successful install" `Quick
      test_replay_after_success;
    Alcotest.test_case "stale source answers typed forwards" `Quick
      test_stale_source;
    Alcotest.test_case "migration refused mid-flush" `Quick
      test_migrate_mid_flush;
    Alcotest.test_case "equal seeds, equal fleets" `Quick test_determinism;
    Alcotest.test_case "migration through a lossy network" `Quick
      test_lossy_network;
    Alcotest.test_case "LB consistent-hash sharding" `Quick test_lb_sharding;
    Alcotest.test_case "rolling monitor upgrade" `Quick test_rolling_upgrade;
    Alcotest.test_case "node kill, failover, chaos migration home" `Quick
      test_kill_failover_chaos;
    Alcotest.test_case "permanent migration fault is typed" `Quick
      test_permanent_migration_fault;
    Alcotest.test_case "singleton shim" `Quick test_singleton;
  ]
