(* End-to-end remote attestation: quote generation on one platform,
   verification with golden values, and every failure mode. *)

open Hyperenclave

let nonce = Bytes.of_string "verifier-nonce-1"

let build ?(seed = 4000L) ?(code_seed = "attested-app") () =
  let p = Platform.create ~seed () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed }
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  let quote = Urts.gen_quote handle ~report_data:(Bytes.of_string "rd") ~nonce in
  (p, handle, quote)

let golden_of (p : Platform.t) =
  Verifier.golden_of_boot_log
    ~ek_public:(Hyperenclave.Tpm.ek_public p.Platform.tpm)
    (Monitor.boot_log p.Platform.monitor)

let policy_for handle =
  {
    Verifier.expected_mrenclave = Some (Urts.mrenclave handle);
    expected_mrsigner = None;
    allow_debug = false;
  }

let expect_ok result =
  match result with
  | Verifier.Ok report -> report
  | Verifier.Error failure ->
      Alcotest.failf "expected Ok, got %a" Verifier.pp_failure failure

let expect_error expected result =
  match result with
  | Verifier.Ok _ -> Alcotest.fail "expected verification failure"
  | Verifier.Error failure ->
      Alcotest.(check string)
        "failure kind"
        (Format.asprintf "%a" Verifier.pp_failure expected)
        (Format.asprintf "%a" Verifier.pp_failure failure)

let test_verify_ok () =
  let p, handle, quote = build () in
  let report =
    expect_ok (Verifier.verify ~golden:(golden_of p) ~policy:(policy_for handle) ~nonce quote)
  in
  Alcotest.(check string)
    "report data survives" "rd"
    (String.sub (Bytes.to_string report.Sgx_types.report_data) 0 2);
  Urts.destroy handle

let test_stale_nonce () =
  let p, handle, quote = build () in
  expect_error Verifier.Stale_nonce
    (Verifier.verify ~golden:(golden_of p) ~policy:(policy_for handle)
       ~nonce:(Bytes.of_string "old-nonce") quote);
  Urts.destroy handle

let test_wrong_ek () =
  let p, handle, quote = build () in
  let clock = Cycles.create () in
  let other_tpm =
    Hyperenclave.Tpm.manufacture ~clock ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:9L)
  in
  let golden =
    {
      (golden_of p) with
      Verifier.ek_public = Hyperenclave.Tpm.ek_public other_tpm;
    }
  in
  expect_error Verifier.Bad_tpm_signature
    (Verifier.verify ~golden ~policy:(policy_for handle) ~nonce quote);
  Urts.destroy handle

let test_tampered_boot_component () =
  (* Platform whose kernel image was modified by an evil maid: same TPM
     identity (same seed), different kernel measurement.  The verifier
     holding the good build's golden values must reject it by name. *)
  let good, good_handle, _ = build ~seed:4001L () in
  let golden = golden_of good in
  let evil = Platform.create ~seed:4001L ~tamper_boot:"kernel" () in
  let evil_handle =
    Urts.create ~kmod:evil.Platform.kmod ~proc:evil.Platform.proc
      ~rng:evil.Platform.rng ~signer:evil.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  let evil_quote =
    Urts.gen_quote evil_handle ~report_data:(Bytes.of_string "rd") ~nonce
  in
  (match
     Verifier.verify ~golden
       ~policy:
         {
           Verifier.expected_mrenclave = None;
           expected_mrsigner = None;
           allow_debug = false;
         }
       ~nonce evil_quote
   with
  | Verifier.Ok _ -> Alcotest.fail "tampered platform verified"
  | Verifier.Error (Verifier.Boot_component_mismatch name) ->
      Alcotest.(check string) "the kernel is named" "kernel" name
  | Verifier.Error other ->
      Alcotest.failf "expected component mismatch, got %a" Verifier.pp_failure
        other);
  Urts.destroy good_handle;
  Urts.destroy evil_handle

let test_event_log_replay () =
  let p, handle, quote = build () in
  (* Doctoring the event log so it no longer replays to the quoted PCRs. *)
  let doctored =
    {
      quote with
      Monitor.events =
        List.map
          (fun (e : Monitor.boot_event) ->
            if e.Monitor.label = "kernel" then
              { e with Monitor.measurement = Bytes.make 32 'd' }
            else e)
          quote.Monitor.events;
    }
  in
  expect_error Verifier.Event_log_mismatch
    (Verifier.verify ~golden:(golden_of p) ~policy:(policy_for handle) ~nonce
       doctored);
  Urts.destroy handle

let test_forged_ems () =
  let p, handle, quote = build () in
  let forged = { quote with Monitor.ems = Bytes.make 32 'f' } in
  expect_error Verifier.Bad_ems
    (Verifier.verify ~golden:(golden_of p) ~policy:(policy_for handle) ~nonce
       forged);
  Urts.destroy handle

let test_policy_mrenclave () =
  let p, handle, quote = build () in
  let policy =
    {
      Verifier.expected_mrenclave = Some (Bytes.make 32 'x');
      expected_mrsigner = None;
      allow_debug = false;
    }
  in
  expect_error
    (Verifier.Policy_violation "MRENCLAVE mismatch")
    (Verifier.verify ~golden:(golden_of p) ~policy ~nonce quote);
  Urts.destroy handle

let test_policy_mrsigner () =
  let p, handle, quote = build () in
  let enclave = Urts.enclave handle in
  let policy =
    {
      Verifier.expected_mrenclave = None;
      expected_mrsigner = Some enclave.Enclave.mrsigner;
      allow_debug = false;
    }
  in
  ignore (expect_ok (Verifier.verify ~golden:(golden_of p) ~policy ~nonce quote));
  let bad =
    { policy with Verifier.expected_mrsigner = Some (Bytes.make 32 'y') }
  in
  expect_error
    (Verifier.Policy_violation "MRSIGNER mismatch")
    (Verifier.verify ~golden:(golden_of p) ~policy:bad ~nonce quote);
  Urts.destroy handle

let test_debug_policy () =
  let p = Platform.create ~seed:4005L () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.debug = true }
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  let quote = Urts.gen_quote handle ~report_data:Bytes.empty ~nonce in
  let policy =
    {
      Verifier.expected_mrenclave = None;
      expected_mrsigner = None;
      allow_debug = false;
    }
  in
  expect_error
    (Verifier.Policy_violation "debug enclave not allowed")
    (Verifier.verify ~golden:(golden_of p) ~policy ~nonce quote);
  ignore
    (expect_ok
       (Verifier.verify ~golden:(golden_of p)
          ~policy:{ policy with Verifier.allow_debug = true }
          ~nonce quote));
  Urts.destroy handle

let test_wrong_pcr_selection () =
  (* A TPM quote over the wrong PCR set carries a valid AIK signature,
     but replaying the event log cannot reproduce its digest: the
     verifier must name the event log, not the signature. *)
  let p, handle, quote = build ~seed:4020L () in
  let doctored =
    {
      quote with
      Monitor.tpm_quote =
        Hyperenclave.Tpm.quote p.Platform.tpm ~nonce ~pcr_selection:[ 0 ];
    }
  in
  expect_error Verifier.Event_log_mismatch
    (Verifier.verify ~golden:(golden_of p) ~policy:(policy_for handle) ~nonce
       doctored);
  Urts.destroy handle

let foreign_quote seed =
  (* A fully valid quote from a different platform (different monitor
     key pair) — donor material for splicing attacks. *)
  let p = Platform.create ~seed () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  let quote = Urts.gen_quote handle ~report_data:(Bytes.of_string "rd") ~nonce in
  Urts.destroy handle;
  quote

let test_ems_from_foreign_hapk () =
  (* The ems is swapped for one signed by another platform's monitor
     key: the signature is internally valid, but not under THIS quote's
     hapk. *)
  let p, handle, quote = build ~seed:4021L () in
  let foreign = foreign_quote 4022L in
  expect_error Verifier.Bad_ems
    (Verifier.verify ~golden:(golden_of p) ~policy:(policy_for handle) ~nonce
       { quote with Monitor.ems = foreign.Monitor.ems });
  Urts.destroy handle

let test_foreign_hapk_and_ems () =
  (* Swapping hapk AND ems together keeps the pair consistent, so the
     ems check alone would pass — the measured-boot binding is what
     must catch it: this hapk was never extended into the quoted PCRs. *)
  let p, handle, quote = build ~seed:4023L () in
  let foreign = foreign_quote 4024L in
  expect_error Verifier.Hapk_not_measured
    (Verifier.verify ~golden:(golden_of p) ~policy:(policy_for handle) ~nonce
       {
         quote with
         Monitor.hapk = foreign.Monitor.hapk;
         Monitor.ems = foreign.Monitor.ems;
       });
  Urts.destroy handle

let test_wire_roundtrip () =
  let p, handle, quote = build ~seed:4010L () in
  let encoded = Quote_wire.encode quote in
  (match Quote_wire.decode encoded with
  | Result.Error m -> Alcotest.fail ("decode failed: " ^ m)
  | Result.Ok decoded ->
      (* The decoded quote must verify exactly like the original. *)
      ignore
        (expect_ok
           (Verifier.verify ~golden:(golden_of p) ~policy:(policy_for handle)
              ~nonce decoded)));
  (* Truncations at every prefix length must be rejected, not crash. *)
  for len = 0 to Bytes.length encoded - 1 do
    match Quote_wire.decode (Bytes.sub encoded 0 len) with
    | Result.Error _ -> ()
    | Result.Ok _ -> Alcotest.failf "truncation to %d bytes accepted" len
  done;
  (* Trailing garbage rejected. *)
  (match Quote_wire.decode (Bytes.cat encoded (Bytes.of_string "x")) with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "trailing bytes accepted");
  Urts.destroy handle

let test_wire_bitflips_never_verify () =
  let p, handle, quote = build ~seed:4011L () in
  let golden = golden_of p in
  let policy = policy_for handle in
  let encoded = Quote_wire.encode quote in
  let rng = Rng.create ~seed:4242L in
  let flips_verified = ref 0 in
  for _ = 1 to 200 do
    let copy = Bytes.copy encoded in
    let i = Rng.int rng (Bytes.length copy) in
    Bytes.set copy i (Char.chr (Char.code (Bytes.get copy i) lxor (1 lsl Rng.int rng 8)));
    match Quote_wire.decode copy with
    | Result.Error _ -> ()
    | Result.Ok doctored -> (
        match Verifier.verify ~golden ~policy ~nonce doctored with
        | Verifier.Error _ -> ()
        | Verifier.Ok report ->
            (* A flip may land in fields the remote chain deliberately
               ignores (the local-attestation MAC, the advisory PCR-index
               list).  What must never happen is a verifying quote whose
               security-relevant content changed. *)
            let security_intact =
              Bytes.equal report.Sgx_types.mrenclave
                quote.Monitor.report.Sgx_types.mrenclave
              && Bytes.equal report.Sgx_types.mrsigner
                   quote.Monitor.report.Sgx_types.mrsigner
              && Bytes.equal report.Sgx_types.report_data
                   quote.Monitor.report.Sgx_types.report_data
              && Bytes.equal doctored.Monitor.hapk quote.Monitor.hapk
              && Bytes.equal doctored.Monitor.tpm_quote.Tpm.pcr_digest
                   quote.Monitor.tpm_quote.Tpm.pcr_digest
            in
            if not security_intact then incr flips_verified)
  done;
  Alcotest.(check int)
    "no flip alters security-relevant content and still verifies" 0
    !flips_verified;
  Urts.destroy handle

let suite =
  [
    Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire bitflips never verify" `Quick
      test_wire_bitflips_never_verify;
    Alcotest.test_case "verify ok" `Quick test_verify_ok;
    Alcotest.test_case "stale nonce" `Quick test_stale_nonce;
    Alcotest.test_case "wrong EK" `Quick test_wrong_ek;
    Alcotest.test_case "tampered boot component" `Quick test_tampered_boot_component;
    Alcotest.test_case "event log replay" `Quick test_event_log_replay;
    Alcotest.test_case "wrong PCR selection" `Quick test_wrong_pcr_selection;
    Alcotest.test_case "forged ems" `Quick test_forged_ems;
    Alcotest.test_case "ems from foreign hapk" `Quick test_ems_from_foreign_hapk;
    Alcotest.test_case "foreign hapk and ems spliced" `Quick
      test_foreign_hapk_and_ems;
    Alcotest.test_case "policy mrenclave" `Quick test_policy_mrenclave;
    Alcotest.test_case "policy mrsigner" `Quick test_policy_mrsigner;
    Alcotest.test_case "debug policy" `Quick test_debug_policy;
  ]
