(* Golden cycle-count regression tests.

   The constants below were recorded from the pre-optimization simulation
   kernels (PR 2 baseline).  Perf work on `Mem_sim`, `Tlb`, `Cache` or the
   crypto kernels must keep every number here bit-identical: simulated
   cycles, RNG stream position, EPC swap counts, TLB/cache hit statistics
   and monitor telemetry counters are the repo's cycle-identity contract
   (see EXPERIMENTS.md, "Wall-clock methodology").  If a change moves one
   of these values it is a model change, not an optimization, and belongs
   in its own PR with recalibrated expectations. *)

open Hyperenclave

let check = Alcotest.(check int)
let mib = 1024 * 1024

let mem_sim_scenario ~engine ~translation f =
  let clock = Cycles.create () in
  let rng = Rng.create ~seed:42L in
  let sim =
    Mem_sim.create ~clock ~cost:Cost_model.default ~rng ~engine ~translation ()
  in
  f sim;
  (clock, rng, sim)

let assert_scenario name (clock, rng, sim) ~cycles ~swaps ~tlb ~cache ~resident
    ~rng_probe =
  check (name ^ " cycles") cycles (Cycles.now clock);
  check (name ^ " swaps") swaps (Mem_sim.swaps sim);
  let lookups, hits = Mem_sim.tlb_stats sim in
  check (name ^ " tlb lookups") (fst tlb) lookups;
  check (name ^ " tlb hits") (snd tlb) hits;
  let accesses, misses = Mem_sim.cache_stats sim in
  check (name ^ " cache accesses") (fst cache) accesses;
  check (name ^ " cache misses") (snd cache) misses;
  check (name ^ " resident") resident (Mem_sim.resident_pages sim);
  (* The probe draw proves the scan left the RNG stream untouched at the
     exact same position as the per-line reference implementation. *)
  check (name ^ " rng stream") rng_probe (Rng.int rng 1_000_000)

let test_seq_mee () =
  let r =
    mem_sim_scenario
      ~engine:(Hw.Mem_crypto.Mee { epc_bytes = 8 * mib })
      ~translation:Mem_sim.One_level
      (fun sim ->
        Mem_sim.seq_scan sim ~base:0 ~bytes:(32 * mib) ~write:false;
        Mem_sim.seq_scan sim ~base:4096 ~bytes:(2 * mib) ~write:true;
        Mem_sim.seq_scan sim ~base:100 ~bytes:70_000 ~write:false)
  in
  assert_scenario "seq_mee" r ~cycles:307_287_187 ~swaps:2561
    ~tlb:(296_006, 291_474) ~cache:(296_006, 294_975) ~resident:2048
    ~rng_probe:818_853

let test_rand_mee () =
  let r =
    mem_sim_scenario
      ~engine:(Hw.Mem_crypto.Mee { epc_bytes = 8 * mib })
      ~translation:Mem_sim.Nested
      (fun sim ->
        Mem_sim.random_access sim ~base:0 ~working_set:(16 * mib)
          ~count:100_000 ~write:true;
        Mem_sim.random_access sim ~base:(64 * mib) ~working_set:mib
          ~count:50_000 ~write:false)
  in
  assert_scenario "rand_mee" r ~cycles:2_583_263_098 ~swaps:48_891
    ~tlb:(150_000, 86_898) ~cache:(150_000, 98_758) ~resident:2048
    ~rng_probe:618_663

let test_touch_sme () =
  let r =
    mem_sim_scenario ~engine:Hw.Mem_crypto.Sme ~translation:Mem_sim.One_level
      (fun sim ->
        let addr = ref 97 in
        for i = 1 to 2_000 do
          let len = 1 + ((i * 2654435761) land 0x3fff) in
          Mem_sim.touch_bytes sim ~addr:!addr ~len ~write:(i land 1 = 0);
          Mem_sim.touch_dependent sim ~addr:(!addr + 13) ~len:(1 + (len / 3))
            ~write:(i land 3 = 0);
          addr := !addr + len + 179
        done)
  in
  assert_scenario "touch_sme" r ~cycles:39_363_450 ~swaps:0
    ~tlb:(345_283, 341_194) ~cache:(345_283, 257_966) ~resident:0
    ~rng_probe:818_853

let test_fig11_points () =
  (* The fig11 metric itself (avg cycles/access) at two moderate sizes;
     float division of exact integer cycle counts, so bit-stable. *)
  let avg ~engine ~pattern ~ws =
    let clock = Cycles.create () in
    let sim =
      Mem_sim.create ~clock ~cost:Cost_model.default
        ~rng:(Rng.create ~seed:5L) ~engine ()
    in
    Mem_sim.avg_access_cycles sim ~pattern ~working_set:ws
  in
  Alcotest.(check string)
    "mee random 16MB" "643.656250"
    (Printf.sprintf "%.6f"
       (avg
          ~engine:(Hw.Mem_crypto.Mee { epc_bytes = Platform.sgx_epc_bytes })
          ~pattern:`Random ~ws:(16 * mib)));
  Alcotest.(check string)
    "sme seq 4MB" "41.000000"
    (Printf.sprintf "%.6f"
       (avg ~engine:Hw.Mem_crypto.Sme ~pattern:`Seq ~ws:(4 * mib)))

let test_table1_ecall () =
  (* Trimmed Table 1 methodology: 50 empty GU ECALLs against a fresh
     platform.  Covers monitor world switches, SDK edge paths and the
     enclave launch measurement (Sha256 over every EADDed page). *)
  let platform = Platform.create ~seed:101L () in
  let backend =
    Backend.hyperenclave platform ~mode:Sgx_types.GU
      ~handlers:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[] ()
  in
  let total = ref 0 in
  for _ = 1 to 50 do
    let _, c =
      Cycles.time platform.Platform.clock (fun () ->
          backend.Backend.call ~id:1 ~direction:Edge.In ())
    in
    total := !total + c
  done;
  check "ecall cycles" 474_000 !total;
  check "platform clock" 4_662_139 (Cycles.now platform.Platform.clock);
  backend.Backend.destroy ()

let test_fig7_marshalling () =
  (* Trimmed Fig. 7 methodology: 16 KiB in&out ECALLs through the
     marshalling buffer, plus the full monitor telemetry counter set. *)
  let platform = Platform.create ~seed:303L () in
  let enclave =
    Urts.create ~kmod:platform.Platform.kmod ~proc:platform.Platform.proc
      ~rng:platform.Platform.rng ~signer:platform.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:[ (3, fun _ input -> input) ]
      ~ocalls:[]
  in
  let payload = Bytes.make 16384 'd' in
  let total = ref 0 in
  for _ = 1 to 20 do
    let _, c =
      Cycles.time platform.Platform.clock (fun () ->
          ignore
            (Urts.ecall enclave ~id:3 ~data:payload ~direction:Edge.In_out ()))
    in
    total := !total + c
  done;
  check "in&out cycles" 355_180 !total;
  check "platform clock" 4_543_319 (Cycles.now platform.Platform.clock);
  let snap =
    Telemetry.snapshot (Monitor.telemetry platform.Platform.monitor)
  in
  Alcotest.(check (list (pair string int)))
    "telemetry counters"
    [
      ("epc.alloc", 22);
      ("hypercall.eadd", 22);
      ("hypercall.eadd_tcs", 2);
      ("hypercall.ecreate", 1);
      ("hypercall.einit", 1);
      ("sdk.ecall", 20);
      ("switch.eenter", 20);
      ("switch.eexit", 20);
    ]
    snap.Telemetry.counters;
  Urts.destroy enclave

(* Randomized equivalence: the page-granular fast paths must behave
   bit-for-bit like the per-line reference walks on arbitrary bases,
   lengths and engines — same cycles, same swap counts, same TLB/cache
   statistics, same residency, and the same RNG stream position
   afterwards (proven by drawing one probe from each sim's RNG). *)
let equivalence_prop =
  let open QCheck in
  Test.make ~name:"fast paths = per-line reference (randomized)" ~count:60
    (quad (int_range 0 200_000) (int_range 1 150_000) (int_range 0 2)
       (int_range 8 64))
    (fun (base, bytes, engine_ix, epc_pages) ->
      let engine =
        match engine_ix with
        | 0 -> Hw.Mem_crypto.Plain
        | 1 -> Hw.Mem_crypto.Sme
        | _ -> Hw.Mem_crypto.Mee { epc_bytes = epc_pages * 4096 }
      in
      let mk () =
        let clock = Cycles.create () in
        let rng = Rng.create ~seed:99L in
        ( clock,
          rng,
          Mem_sim.create ~clock ~cost:Cost_model.default ~rng ~engine
            ~translation:Mem_sim.Nested () )
      in
      let fc, fr, fast = mk () in
      let rc, rr, refr = mk () in
      Mem_sim.seq_scan fast ~base ~bytes ~write:false;
      Mem_sim.seq_scan_reference refr ~base ~bytes ~write:false;
      Mem_sim.touch_bytes fast ~addr:(base + 13) ~len:(1 + (bytes / 3))
        ~write:true;
      Mem_sim.touch_bytes_reference refr ~addr:(base + 13)
        ~len:(1 + (bytes / 3)) ~write:true;
      Mem_sim.touch_dependent fast ~addr:(base + 77) ~len:(1 + (bytes / 5))
        ~write:false;
      Mem_sim.touch_dependent_reference refr ~addr:(base + 77)
        ~len:(1 + (bytes / 5)) ~write:false;
      Cycles.now fc = Cycles.now rc
      && Mem_sim.swaps fast = Mem_sim.swaps refr
      && Mem_sim.tlb_stats fast = Mem_sim.tlb_stats refr
      && Mem_sim.cache_stats fast = Mem_sim.cache_stats refr
      && Mem_sim.resident_pages fast = Mem_sim.resident_pages refr
      && Rng.int fr 1_000_000 = Rng.int rr 1_000_000)

let suite =
  [
    Alcotest.test_case "golden: Mem_sim seq scan (Mee)" `Quick test_seq_mee;
    Alcotest.test_case "golden: Mem_sim random access (Mee)" `Quick
      test_rand_mee;
    Alcotest.test_case "golden: Mem_sim object touches (Sme)" `Quick
      test_touch_sme;
    Alcotest.test_case "golden: fig11 latency points" `Quick test_fig11_points;
    Alcotest.test_case "golden: table1 GU ECALL cycles" `Quick
      test_table1_ecall;
    Alcotest.test_case "golden: fig7 marshalling cycles + telemetry" `Quick
      test_fig7_marshalling;
    QCheck_alcotest.to_alcotest equivalence_prop;
  ]
