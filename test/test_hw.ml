(* Unit and property tests for the hardware substrate. *)

open Hyperenclave.Hw

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Cycles ----------------------------------------------------------------- *)

let test_cycles () =
  let clock = Cycles.create () in
  check "fresh clock" 0 (Cycles.now clock);
  Cycles.tick clock 42;
  check "tick" 42 (Cycles.now clock);
  let (), elapsed = Cycles.time clock (fun () -> Cycles.tick clock 100) in
  check "time" 100 elapsed;
  check "elapsed" 142 (Cycles.elapsed clock ~since:0);
  Cycles.reset clock;
  check "reset" 0 (Cycles.now clock)

(* --- Rng ---------------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create ~seed:8L in
  check_bool "different seed differs" false (Rng.next_int64 a = Rng.next_int64 c)

let test_rng_bounds () =
  let rng = Rng.create ~seed:1L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "int in range" true (v >= 0 && v < 17);
    let f = Rng.float rng 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_set_seed () =
  let rng = Rng.create ~seed:3L in
  let first = Rng.next_int64 rng in
  ignore (Rng.next_int64 rng);
  Rng.set_seed rng 3L;
  Alcotest.(check int64) "replay after set_seed" first (Rng.next_int64 rng)

let test_rng_shuffle () =
  let rng = Rng.create ~seed:5L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* --- Addr ---------------------------------------------------------------------- *)

let test_addr () =
  check "page_of" 2 (Addr.page_of 0x2fff);
  check "base_of_page" 0x2000 (Addr.base_of_page 2);
  check "offset" 0xfff (Addr.offset 0x2fff);
  check "align_up" 0x3000 (Addr.align_up 0x2001);
  check "align_up aligned" 0x2000 (Addr.align_up 0x2000);
  check "align_down" 0x2000 (Addr.align_down 0x2fff);
  check_bool "is_aligned" true (Addr.is_aligned 0x4000);
  check "pages_spanned one" 1 (Addr.pages_spanned ~addr:0x10 ~len:16);
  check "pages_spanned cross" 2 (Addr.pages_spanned ~addr:0xff8 ~len:16);
  check "pages_spanned empty" 0 (Addr.pages_spanned ~addr:0 ~len:0);
  check "index level0" 1 (Addr.index ~level:0 0x1000);
  check "index level1" 1 (Addr.index ~level:1 (1 lsl 21))

(* --- Phys_mem -------------------------------------------------------------------- *)

let test_phys_mem () =
  let mem = Phys_mem.create ~size_bytes:(64 * 4096) in
  check "frames" 64 (Phys_mem.frames mem);
  check "untouched reads zero" 0 (Phys_mem.read_u8 mem 0x1234);
  Phys_mem.write_u8 mem 0x1234 0xAB;
  check "write/read u8" 0xAB (Phys_mem.read_u8 mem 0x1234);
  Phys_mem.write_u64 mem 0xffc 0x1122334455667788L;
  Alcotest.(check int64)
    "u64 across page boundary" 0x1122334455667788L
    (Phys_mem.read_u64 mem 0xffc);
  let data = Bytes.of_string "hello, physical memory" in
  Phys_mem.write_bytes mem 0x1ff0 data;
  Alcotest.(check string)
    "bytes across boundary" "hello, physical memory"
    (Bytes.to_string (Phys_mem.read_bytes mem 0x1ff0 (Bytes.length data)));
  Phys_mem.blit mem ~src:0x1ff0 ~dst:0x5000 ~len:(Bytes.length data);
  Alcotest.(check string)
    "blit" "hello, physical memory"
    (Bytes.to_string (Phys_mem.read_bytes mem 0x5000 (Bytes.length data)));
  Phys_mem.zero_page mem ~frame:5;
  check "zero_page scrubs" 0 (Phys_mem.read_u8 mem 0x5000);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Phys_mem: access [0x40000, +1) outside 0x40000")
    (fun () -> ignore (Phys_mem.read_u8 mem (64 * 4096)))

(* --- Frame_alloc ------------------------------------------------------------------- *)

let test_frame_alloc () =
  let fa = Frame_alloc.create ~base_frame:100 ~nframes:8 in
  check "total" 8 (Frame_alloc.total fa);
  let f1 = Frame_alloc.alloc fa in
  check_bool "allocated in range" true (Frame_alloc.owns fa f1);
  check "used" 1 (Frame_alloc.used_count fa);
  Frame_alloc.free fa f1;
  check "freed" 0 (Frame_alloc.used_count fa);
  Alcotest.check_raises "double free"
    (Invalid_argument "Frame_alloc.free: double free") (fun () ->
      Frame_alloc.free fa f1);
  let all = List.init 8 (fun _ -> Frame_alloc.alloc fa) in
  check "exhausted" 0 (Frame_alloc.free_count fa);
  (try
     ignore (Frame_alloc.alloc fa);
     Alcotest.fail "expected Out_of_frames"
   with Frame_alloc.Out_of_frames -> ());
  List.iter (Frame_alloc.free fa) all;
  let base = Frame_alloc.alloc_contiguous fa 8 in
  check "contiguous run at base" 100 base

let test_frame_alloc_contiguous_fragmented () =
  let fa = Frame_alloc.create ~base_frame:0 ~nframes:8 in
  let all = List.init 8 (fun _ -> Frame_alloc.alloc fa) in
  (* Free everything except frame 3, splitting the space 0-2 / 4-7. *)
  List.iter (fun f -> if f <> 3 then Frame_alloc.free fa f) all;
  let run = Frame_alloc.alloc_contiguous fa 4 in
  check "finds the 4-frame hole" 4 run;
  (try
     ignore (Frame_alloc.alloc_contiguous fa 4);
     Alcotest.fail "expected Out_of_frames"
   with Frame_alloc.Out_of_frames -> ())

(* --- Page_table --------------------------------------------------------------------- *)

let test_page_table () =
  let pt = Page_table.create () in
  check "empty" 0 (Page_table.mapped_count pt);
  Page_table.map pt ~vpn:0x12345 ~frame:77 ~perms:Page_table.rw;
  (match Page_table.lookup pt ~vpn:0x12345 with
  | Some e ->
      check "frame" 77 e.Page_table.frame;
      check_bool "accessed starts clear" false e.Page_table.accessed
  | None -> Alcotest.fail "mapping missing");
  check "mapped" 1 (Page_table.mapped_count pt);
  let levels = ref 0 in
  ignore (Page_table.walk pt ~vpn:0x12345 ~levels_visited:levels);
  check "walk visits 4 levels" 4 !levels;
  Page_table.protect pt ~vpn:0x12345 ~perms:Page_table.ro;
  (match Page_table.lookup pt ~vpn:0x12345 with
  | Some e -> check_bool "write revoked" false e.Page_table.perms.Page_table.write
  | None -> Alcotest.fail "mapping missing");
  check_bool "reverse lookup" true
    (Page_table.find_vpn_of_frame pt ~frame:77 = Some 0x12345);
  Page_table.unmap pt ~vpn:0x12345;
  check "unmapped" 0 (Page_table.mapped_count pt);
  Alcotest.check_raises "protect missing" Not_found (fun () ->
      Page_table.protect pt ~vpn:1 ~perms:Page_table.rw)

let test_page_table_iter () =
  let pt = Page_table.create () in
  let vpns = [ 1; 513; 0x40000; 0x12345678 ] in
  List.iter (fun vpn -> Page_table.map pt ~vpn ~frame:vpn ~perms:Page_table.rw) vpns;
  let seen = ref [] in
  Page_table.iter pt (fun ~vpn e ->
      check "identity frame" vpn e.Page_table.frame;
      seen := vpn :: !seen);
  Alcotest.(check (list int)) "all visited" (List.sort compare vpns)
    (List.sort compare !seen);
  check_bool "multiple radix nodes" true (Page_table.table_pages pt > 4)

(* --- Tlb ---------------------------------------------------------------------------- *)

let test_tlb () =
  let tlb = Tlb.create ~capacity:4 (Rng.create ~seed:2L) in
  Tlb.insert tlb ~vpn:1 { Tlb.frame = 10; perms = Page_table.rw; pte = None };
  (match Tlb.lookup tlb ~vpn:1 with
  | Some e -> check "hit frame" 10 e.Tlb.frame
  | None -> Alcotest.fail "expected hit");
  check_bool "miss" true (Tlb.lookup tlb ~vpn:2 = None);
  for vpn = 2 to 10 do
    Tlb.insert tlb ~vpn { Tlb.frame = vpn; perms = Page_table.rw; pte = None }
  done;
  check_bool "bounded" true (Tlb.entries tlb <= 4);
  Tlb.invalidate tlb ~vpn:10;
  check_bool "invalidate" true (Tlb.lookup tlb ~vpn:10 = None);
  Tlb.flush tlb;
  check "flushed" 0 (Tlb.entries tlb);
  check_bool "stats counted" true (Tlb.lookups tlb > 0 && Tlb.hits tlb >= 1)

(* --- Mmu ---------------------------------------------------------------------------- *)

let mmu_fixture ~nested () =
  let clock = Cycles.create () in
  let gpt = Page_table.create () in
  let npt = if nested then Some (Page_table.create ()) else None in
  let mmu =
    match npt with
    | Some npt ->
        Mmu.create ~clock ~cost:Cost_model.default ~rng:(Rng.create ~seed:3L)
          ~gpt ~npt ()
    | None ->
        Mmu.create ~clock ~cost:Cost_model.default ~rng:(Rng.create ~seed:3L)
          ~gpt ()
  in
  (clock, gpt, npt, mmu)

let test_mmu_translate () =
  let _clock, gpt, _, mmu = mmu_fixture ~nested:false () in
  Page_table.map gpt ~vpn:5 ~frame:9 ~perms:Page_table.rw;
  check "translate" ((9 * 4096) + 0x123)
    (Mmu.translate mmu ~access:Mmu.Read ~user:true ((5 * 4096) + 0x123));
  (* second access hits the TLB *)
  check "tlb path" (9 * 4096)
    (Mmu.translate mmu ~access:Mmu.Read ~user:true (5 * 4096));
  (match Page_table.lookup gpt ~vpn:5 with
  | Some e -> Alcotest.(check bool) "accessed set" true e.Page_table.accessed
  | None -> Alcotest.fail "missing");
  ignore (Mmu.translate mmu ~access:Mmu.Write ~user:true (5 * 4096));
  (match Page_table.lookup gpt ~vpn:5 with
  | Some e -> Alcotest.(check bool) "dirty set" true e.Page_table.dirty
  | None -> Alcotest.fail "missing")

(* The TLB caches the leaf PTE so a warm-TLB write sets accessed/dirty
   through the cached reference instead of re-walking the tables; this
   pins down that the cached reference IS the live PTE and that the
   hardware-visible bit semantics survived the optimization. *)
let test_mmu_cached_pte () =
  let _clock, gpt, _, mmu = mmu_fixture ~nested:false () in
  Page_table.map gpt ~vpn:6 ~frame:11 ~perms:Page_table.rw;
  ignore (Mmu.translate mmu ~access:Mmu.Read ~user:true (6 * 4096));
  let pte =
    match Page_table.lookup gpt ~vpn:6 with
    | Some e -> e
    | None -> Alcotest.fail "missing pte"
  in
  check_bool "accessed after warm-up read" true pte.Page_table.accessed;
  check_bool "clean after warm-up read" false pte.Page_table.dirty;
  (* The TLB entry must carry the very PTE record the walker filled from. *)
  (match Tlb.lookup (Mmu.tlb mmu) ~vpn:6 with
  | Some { Tlb.pte = Some cached; _ } ->
      check_bool "TLB caches the live PTE" true (cached == pte)
  | Some { Tlb.pte = None; _ } -> Alcotest.fail "TLB entry lost its PTE"
  | None -> Alcotest.fail "translation not cached");
  (* Warm read hits keep the page clean... *)
  ignore (Mmu.translate mmu ~access:Mmu.Read ~user:true ((6 * 4096) + 8));
  check_bool "read hits leave page clean" false pte.Page_table.dirty;
  (* ...and a warm write dirties it through the cached reference. *)
  let hits_before = Tlb.hits (Mmu.tlb mmu) in
  check "warm write translates" ((11 * 4096) + 16)
    (Mmu.translate mmu ~access:Mmu.Write ~user:true ((6 * 4096) + 16));
  check_bool "write was a TLB hit" true (Tlb.hits (Mmu.tlb mmu) > hits_before);
  check_bool "dirty via cached PTE" true pte.Page_table.dirty;
  check_bool "accessed via cached PTE" true pte.Page_table.accessed

let test_mmu_faults () =
  let _clock, gpt, _, mmu = mmu_fixture ~nested:false () in
  (try
     ignore (Mmu.translate mmu ~access:Mmu.Read ~user:true 0x9000);
     Alcotest.fail "expected not-present fault"
   with Mmu.Page_fault f ->
     check_bool "not present" false f.Mmu.present);
  Page_table.map gpt ~vpn:7 ~frame:3 ~perms:Page_table.ro;
  (try
     ignore (Mmu.translate mmu ~access:Mmu.Write ~user:true (7 * 4096));
     Alcotest.fail "expected protection fault"
   with Mmu.Page_fault f -> check_bool "present" true f.Mmu.present);
  Page_table.map gpt ~vpn:8 ~frame:4 ~perms:Page_table.kernel_rw;
  (try
     ignore (Mmu.translate mmu ~access:Mmu.Read ~user:true (8 * 4096));
     Alcotest.fail "expected user fault"
   with Mmu.Page_fault _ -> ());
  ignore (Mmu.translate mmu ~access:Mmu.Read ~user:false (8 * 4096))

let test_mmu_nested () =
  let _clock, gpt, npt, mmu = mmu_fixture ~nested:true () in
  let npt = Option.get npt in
  Page_table.map gpt ~vpn:5 ~frame:50 ~perms:Page_table.rw;
  (* No nested mapping for gfn 50 yet: requirement R-1 in action. *)
  (try
     ignore (Mmu.translate mmu ~access:Mmu.Read ~user:true (5 * 4096));
     Alcotest.fail "expected NPT violation"
   with Mmu.Npt_violation { gfn; _ } -> check "violating gfn" 50 gfn);
  Page_table.map npt ~vpn:50 ~frame:90 ~perms:Page_table.rwx;
  check "nested translate" (90 * 4096)
    (Mmu.translate mmu ~access:Mmu.Read ~user:true (5 * 4096))

let test_mmu_switch_flushes () =
  let _clock, gpt, _, mmu = mmu_fixture ~nested:false () in
  Page_table.map gpt ~vpn:5 ~frame:9 ~perms:Page_table.rw;
  ignore (Mmu.translate mmu ~access:Mmu.Read ~user:true (5 * 4096));
  Alcotest.(check bool) "tlb warm" true (Tlb.entries (Mmu.tlb mmu) > 0);
  Mmu.switch_context mmu ~gpt:(Page_table.create ()) ();
  check "tlb flushed on switch" 0 (Tlb.entries (Mmu.tlb mmu));
  (* The old translation must not leak into the new context. *)
  try
    ignore (Mmu.translate mmu ~access:Mmu.Read ~user:true (5 * 4096));
    Alcotest.fail "stale translation survived the switch"
  with Mmu.Page_fault _ -> ()

(* --- Cache ---------------------------------------------------------------------------- *)

let test_cache () =
  let cache = Cache.create ~size_bytes:(64 * 1024) () in
  (match Cache.access cache 0x1000 with
  | Cache.Miss _ -> ()
  | Cache.Hit -> Alcotest.fail "cold access should miss");
  (match Cache.access cache 0x1000 with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "warm access should hit");
  (match Cache.access cache 0x1010 with
  | Cache.Hit -> () (* same 64-byte line *)
  | Cache.Miss _ -> Alcotest.fail "same line should hit");
  Cache.flush_line cache 0x1000;
  (match Cache.access cache 0x1000 with
  | Cache.Miss { evicted_dirty } ->
      check_bool "clean after flush" false evicted_dirty
  | Cache.Hit -> Alcotest.fail "flushed line should miss");
  ignore (Cache.access cache ~write:true 0x2000);
  Cache.flush_all cache;
  check_bool "stats" true (Cache.accesses cache > 0 && Cache.misses cache > 0)

let test_cache_capacity () =
  let cache = Cache.create ~size_bytes:(16 * 1024) ~ways:2 () in
  (* Stream 64 KB (4x capacity), then re-stream: the first pass must have
     been largely evicted. *)
  for i = 0 to 1023 do
    ignore (Cache.access cache (i * 64))
  done;
  Cache.reset_stats cache;
  for i = 0 to 1023 do
    ignore (Cache.access cache (i * 64))
  done;
  check_bool "capacity misses on re-stream" true (Cache.misses cache > 512)

(* --- Mem_crypto -------------------------------------------------------------------------- *)

let test_mem_crypto_costs () =
  let m = Cost_model.default in
  let plain = Mem_crypto.miss_cost m Mem_crypto.Plain ~dirty_evict:false in
  let sme = Mem_crypto.miss_cost m Mem_crypto.Sme ~dirty_evict:false in
  let mee =
    Mem_crypto.miss_cost m (Mem_crypto.Mee { epc_bytes = 1 lsl 20 })
      ~dirty_evict:false
  in
  check_bool "plain < sme < mee" true (plain < sme && sme < mee);
  check_bool "dirty eviction costs more" true
    (Mem_crypto.miss_cost m Mem_crypto.Sme ~dirty_evict:true > sme);
  check_bool "epc limit" true
    (Mem_crypto.epc_limit (Mem_crypto.Mee { epc_bytes = 42 }) = Some 42);
  check_bool "no limit for sme" true (Mem_crypto.epc_limit Mem_crypto.Sme = None)

(* --- Iommu ---------------------------------------------------------------------------------- *)

let test_iommu () =
  let mem = Phys_mem.create ~size_bytes:(16 * 4096) in
  let iommu = Iommu.create () in
  Iommu.attach iommu ~device:"nic";
  (try
     Iommu.dma_write iommu ~device:"nic" mem ~addr:0x1000 (Bytes.of_string "x");
     Alcotest.fail "deny-all table should block DMA"
   with Iommu.Dma_blocked { frame; _ } -> check "blocked frame" 1 frame);
  Iommu.grant iommu ~device:"nic" ~first_frame:1 ~nframes:2;
  Iommu.dma_write iommu ~device:"nic" mem ~addr:0x1000 (Bytes.of_string "ok");
  Alcotest.(check string)
    "dma read back" "ok"
    (Bytes.to_string (Iommu.dma_read iommu ~device:"nic" mem ~addr:0x1000 ~len:2));
  Iommu.revoke_everywhere iommu ~first_frame:1 ~nframes:2;
  (try
     ignore (Iommu.dma_read iommu ~device:"nic" mem ~addr:0x1000 ~len:2);
     Alcotest.fail "revoked range should block"
   with Iommu.Dma_blocked _ -> ())

(* --- property tests --------------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"align_up is aligned and minimal" ~count:500
      (int_bound 1_000_000)
      (fun n ->
        let a = Addr.align_up n in
        Addr.is_aligned a && a >= n && a - n < Addr.page_size);
    Test.make ~name:"page_of inverse of base_of_page" ~count:500
      (int_bound 100_000)
      (fun pn -> Addr.page_of (Addr.base_of_page pn) = pn);
    Test.make ~name:"phys_mem write/read roundtrip" ~count:200
      (pair (int_bound 1000) string)
      (fun (addr, s) ->
        let mem = Phys_mem.create ~size_bytes:(16 * 4096) in
        let data = Bytes.of_string s in
        if Bytes.length data = 0 then true
        else begin
          Phys_mem.write_bytes mem addr data;
          Bytes.equal (Phys_mem.read_bytes mem addr (Bytes.length data)) data
        end);
    Test.make ~name:"page table map/lookup roundtrip" ~count:200
      (small_list (pair (int_bound 0xFFFFFF) (int_bound 0xFFFF)))
      (fun pairs ->
        let pt = Page_table.create () in
        List.iter
          (fun (vpn, frame) -> Page_table.map pt ~vpn ~frame ~perms:Page_table.rw)
          pairs;
        (* last write wins per vpn *)
        let expected = Hashtbl.create 16 in
        List.iter (fun (vpn, frame) -> Hashtbl.replace expected vpn frame) pairs;
        Hashtbl.fold
          (fun vpn frame acc ->
            acc
            &&
            match Page_table.lookup pt ~vpn with
            | Some e -> e.Page_table.frame = frame
            | None -> false)
          expected true);
    Test.make ~name:"frame allocator never hands out a frame twice" ~count:100
      (small_list bool)
      (fun ops ->
        let fa = Frame_alloc.create ~base_frame:0 ~nframes:16 in
        let held = Hashtbl.create 16 in
        List.for_all
          (fun allocate ->
            if allocate then (
              match Frame_alloc.alloc fa with
              | f ->
                  let fresh = not (Hashtbl.mem held f) in
                  Hashtbl.replace held f ();
                  fresh
              | exception Frame_alloc.Out_of_frames ->
                  Hashtbl.length held = 16)
            else
              match Hashtbl.fold (fun f () _ -> Some f) held None with
              | Some f ->
                  Hashtbl.remove held f;
                  Frame_alloc.free fa f;
                  true
              | None -> true)
          ops);
  ]

let test_cache_dirty_writeback () =
  let cache = Cache.create ~size_bytes:(4 * 1024) ~ways:1 () in
  ignore (Cache.access cache ~write:true 0x0);
  (* Direct-mapped: an aliasing address evicts the dirty line. *)
  (match Cache.access cache 0x10000 with
  | Cache.Miss { evicted_dirty } ->
      Alcotest.(check bool) "dirty eviction reported" true evicted_dirty
  | Cache.Hit -> Alcotest.fail "expected conflict miss");
  match Cache.access cache 0x20000 with
  | Cache.Miss { evicted_dirty } ->
      Alcotest.(check bool) "clean eviction reported" false evicted_dirty
  | Cache.Hit -> Alcotest.fail "expected conflict miss"

let test_mem_crypto_hit_uniform () =
  let m = Cost_model.default in
  let engines =
    [ Mem_crypto.Plain; Mem_crypto.Sme; Mem_crypto.Mee { epc_bytes = 1 } ]
  in
  List.iter
    (fun e ->
      Alcotest.(check int)
        "hits cost the same under every engine (plaintext in cache)"
        m.Cost_model.cache_hit (Mem_crypto.hit_cost m e))
    engines;
  Alcotest.(check string) "engine names" "sme-xts" (Mem_crypto.name Mem_crypto.Sme)

let test_iommu_devices () =
  let iommu = Iommu.create () in
  Iommu.attach iommu ~device:"nic";
  Iommu.attach iommu ~device:"disk";
  Iommu.attach iommu ~device:"nic" (* idempotent *);
  Alcotest.(check (list string))
    "device list" [ "disk"; "nic" ]
    (List.sort compare (Iommu.devices iommu));
  Alcotest.check_raises "grant to unattached device" Not_found (fun () ->
      Iommu.grant iommu ~device:"gpu" ~first_frame:0 ~nframes:1)

let test_perms_printer () =
  let show p = Format.asprintf "%a" Page_table.pp_perms p in
  Alcotest.(check string) "rw" "rw-u" (show Page_table.rw);
  Alcotest.(check string) "rx" "r-xu" (show Page_table.rx);
  Alcotest.(check string) "kernel" "rw-k" (show Page_table.kernel_rw)

let test_copy_cost () =
  let m = Cost_model.default in
  Alcotest.(check int) "zero bytes free" 0 (Cost_model.copy_cost m 0);
  Alcotest.(check bool)
    "monotone" true
    (Cost_model.copy_cost m 4096 < Cost_model.copy_cost m 8192);
  Alcotest.(check int)
    "no-overhead model zeroes transitions" 0
    Cost_model.no_overhead.Cost_model.hypercall

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_tests
  @ [
      Alcotest.test_case "cache dirty writeback" `Quick test_cache_dirty_writeback;
      Alcotest.test_case "mem_crypto hit uniform" `Quick test_mem_crypto_hit_uniform;
      Alcotest.test_case "iommu devices" `Quick test_iommu_devices;
      Alcotest.test_case "perms printer" `Quick test_perms_printer;
      Alcotest.test_case "copy cost" `Quick test_copy_cost;
      Alcotest.test_case "cycles" `Quick test_cycles;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng set_seed" `Quick test_rng_set_seed;
      Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle;
      Alcotest.test_case "addr arithmetic" `Quick test_addr;
      Alcotest.test_case "phys_mem" `Quick test_phys_mem;
      Alcotest.test_case "frame_alloc" `Quick test_frame_alloc;
      Alcotest.test_case "frame_alloc contiguous" `Quick
        test_frame_alloc_contiguous_fragmented;
      Alcotest.test_case "page_table basics" `Quick test_page_table;
      Alcotest.test_case "page_table iter" `Quick test_page_table_iter;
      Alcotest.test_case "tlb" `Quick test_tlb;
      Alcotest.test_case "mmu translate" `Quick test_mmu_translate;
      Alcotest.test_case "mmu cached PTE semantics" `Quick test_mmu_cached_pte;
      Alcotest.test_case "mmu faults" `Quick test_mmu_faults;
      Alcotest.test_case "mmu nested (R-1)" `Quick test_mmu_nested;
      Alcotest.test_case "mmu switch flushes TLB" `Quick test_mmu_switch_flushes;
      Alcotest.test_case "cache basics" `Quick test_cache;
      Alcotest.test_case "cache capacity" `Quick test_cache_capacity;
      Alcotest.test_case "mem_crypto costs" `Quick test_mem_crypto_costs;
      Alcotest.test_case "iommu (R-3 primitive)" `Quick test_iommu;
    ]
