(* Backend API v2: the single config-record constructor, its per-kind
   field validation, and the trichotomy audit — no bare exception may
   cross the backend boundary for malformed inputs on any kind. *)

open Hyperenclave

let handlers =
  [
    (1, fun _env input -> input);
    (7, fun (env : Backend.env) input ->
        env.Backend.compute 500;
        Bytes.of_string (string_of_int (Bytes.length input)));
  ]

let all_kinds =
  Backend.Native :: Backend.Sgx
  :: List.map (fun m -> Backend.Hyperenclave m) Sgx_types.all_modes

let make p kind =
  Backend.create p { (Backend.config kind) with Backend.handlers }

let test_create_all_kinds () =
  let p = Platform.create ~seed:7100L () in
  List.iter
    (fun kind ->
      let b = make p kind in
      let reply =
        b.Backend.call ~id:1 ~data:(Bytes.of_string "ping")
          ~direction:Edge.In_out ()
      in
      Alcotest.(check string)
        (Backend.kind_name kind ^ " serves")
        "ping" (Bytes.to_string reply);
      (match (kind, b.Backend.identity) with
      | Backend.Native, Some _ -> Alcotest.fail "native must have no identity"
      | Backend.Native, None -> ()
      | _, None -> Alcotest.failf "%s must expose its MRENCLAVE" (Backend.kind_name kind)
      | _, Some id -> Alcotest.(check int) "identity is a digest" 32 (Bytes.length id));
      b.Backend.destroy ())
    all_kinds

let test_aliases_match_create () =
  (* The deprecated per-kind constructors are thin aliases: same reply,
     same identity as the config-record path. *)
  let p = Platform.create ~seed:7101L () in
  let data = Bytes.of_string "alias" in
  let via_create = make p Backend.Native in
  let via_alias =
    Backend.native ~clock:p.Platform.clock ~cost:p.Platform.cost
      ~rng:p.Platform.rng ~handlers ~ocalls:[]
  in
  Alcotest.(check string) "native replies match"
    (Bytes.to_string (via_create.Backend.call ~id:1 ~data ~direction:Edge.In_out ()))
    (Bytes.to_string (via_alias.Backend.call ~id:1 ~data ~direction:Edge.In_out ()));
  via_create.Backend.destroy ();
  via_alias.Backend.destroy ();
  let hc = make p (Backend.Hyperenclave Sgx_types.GU) in
  let ha = Backend.hyperenclave p ~mode:Sgx_types.GU ~handlers ~ocalls:[] () in
  Alcotest.(check bool) "hyperenclave identities match" true
    (Option.get hc.Backend.identity = Option.get ha.Backend.identity);
  hc.Backend.destroy ();
  ha.Backend.destroy ()

let test_code_seed_changes_identity () =
  let p = Platform.create ~seed:7102L () in
  List.iter
    (fun kind ->
      let b1 =
        Backend.create p
          { (Backend.config kind) with Backend.handlers; code_seed = Some "app-v1" }
      in
      let b2 =
        Backend.create p
          { (Backend.config kind) with Backend.handlers; code_seed = Some "app-v2" }
      in
      Alcotest.(check bool)
        (Backend.kind_name kind ^ ": different code, different identity")
        false
        (Option.get b1.Backend.identity = Option.get b2.Backend.identity);
      b1.Backend.destroy ();
      b2.Backend.destroy ())
    [ Backend.Hyperenclave Sgx_types.GU; Backend.Sgx ]

let test_ms_bytes_override () =
  let p = Platform.create ~seed:7103L () in
  let b =
    Backend.create p
      { (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
        Backend.handlers;
        ms_bytes = Some (8 * 4096) }
  in
  let urts = Option.get b.Backend.urts in
  Alcotest.(check int) "marshalling buffer resized" (8 * 4096)
    (Urts.config urts).Urts.ms_bytes;
  b.Backend.destroy ()

let test_fault_plan_installed () =
  let p = Platform.create ~seed:7104L () in
  Fault.clear ();
  let b =
    Backend.create p
      { (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
        Backend.handlers;
        fault_plan =
          Some [ { Fault.site = "sdk.ms_copy_in"; nth = 1; kind = Fault.Permanent } ] }
  in
  Alcotest.(check bool) "plan armed by create" true (Fault.active ());
  (match
     Backend.protected_call b ~id:1 ~data:(Bytes.of_string "x")
       ~direction:Edge.In_out ()
   with
  | Backend.Typed_error _ -> ()
  | other ->
      Alcotest.failf "expected typed error from installed plan, got %s"
        (Backend.outcome_name other));
  Fault.clear ();
  b.Backend.destroy ()

let test_field_rejection () =
  let p = Platform.create ~seed:7105L () in
  let expect_invalid what config =
    try
      let b = Backend.create p config in
      b.Backend.destroy ();
      Alcotest.failf "%s accepted" what
    with Invalid_argument _ -> ()
  in
  expect_invalid "ms_bytes on native"
    { (Backend.config Backend.Native) with Backend.ms_bytes = Some 4096 };
  expect_invalid "ms_bytes on sgx"
    { (Backend.config Backend.Sgx) with Backend.ms_bytes = Some 4096 };
  expect_invalid "epc_frames on hyperenclave"
    { (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
      Backend.epc_frames = Some 64 };
  expect_invalid "tweak on sgx"
    { (Backend.config Backend.Sgx) with Backend.tweak = Some (fun c -> c) };
  expect_invalid "code_seed on native"
    { (Backend.config Backend.Native) with Backend.code_seed = Some "x" }

(* ------------------------------------------------------------------ *)
(* Trichotomy audit: malformed inputs stay typed on every kind         *)

let malformed_calls (b : Backend.t) =
  [
    ("unknown ecall id", fun () ->
        Backend.protected_call b ~id:999 ~data:(Bytes.of_string "x")
          ~direction:Edge.In_out ());
    ("negative ecall id", fun () ->
        Backend.protected_call b ~id:(-1) ~direction:Edge.In_out ());
    ("oversized payload", fun () ->
        (* Larger than any marshalling buffer in use. *)
        Backend.protected_call b ~id:1
          ~data:(Bytes.make (8 * 1024 * 1024) 'x')
          ~direction:Edge.In_out ());
  ]

let test_no_bare_exceptions () =
  let p = Platform.create ~seed:7106L () in
  List.iter
    (fun kind ->
      let b = make p kind in
      List.iter
        (fun (what, call) ->
          match call () with
          | Backend.Success _ ->
              (* Some baselines (native has no marshalling buffer) may
                 legitimately serve a huge payload; that is still inside
                 the trichotomy. *)
              ()
          | Backend.Typed_error _ | Backend.Violation _ -> ()
          | exception e ->
              Alcotest.failf "%s: %s escaped the trichotomy: %s"
                (Backend.kind_name kind) what (Printexc.to_string e))
        (malformed_calls b);
      (* Batch path: one malformed slot must fail the whole ring as
         typed outcomes, one per request, never an exception. *)
      (match
         Backend.protected_batch b
           ~reqs:[ (1, Bytes.of_string "a"); (999, Bytes.of_string "b") ]
           ()
       with
      | outcomes ->
          Alcotest.(check int)
            (Backend.kind_name kind ^ ": one outcome per slot")
            2 (List.length outcomes);
          List.iter
            (function
              | Backend.Success _ | Backend.Typed_error _ | Backend.Violation _ -> ())
            outcomes
      | exception e ->
          Alcotest.failf "%s: batch escaped the trichotomy: %s"
            (Backend.kind_name kind) (Printexc.to_string e));
      b.Backend.destroy ())
    all_kinds

let test_protected_batch_success () =
  let p = Platform.create ~seed:7107L () in
  List.iter
    (fun kind ->
      let b = make p kind in
      (match
         Backend.protected_batch b
           ~reqs:[ (1, Bytes.of_string "one"); (7, Bytes.of_string "four") ]
           ()
       with
      | [ Backend.Success r1; Backend.Success r2 ] ->
          Alcotest.(check string) "slot 0" "one" (Bytes.to_string r1);
          Alcotest.(check string) "slot 1" "4" (Bytes.to_string r2)
      | _ -> Alcotest.failf "%s: batch did not succeed" (Backend.kind_name kind));
      b.Backend.destroy ())
    all_kinds

let suite =
  [
    Alcotest.test_case "create on all kinds" `Quick test_create_all_kinds;
    Alcotest.test_case "deprecated aliases match create" `Quick
      test_aliases_match_create;
    Alcotest.test_case "code_seed changes identity" `Quick
      test_code_seed_changes_identity;
    Alcotest.test_case "ms_bytes override" `Quick test_ms_bytes_override;
    Alcotest.test_case "fault plan installed by create" `Quick
      test_fault_plan_installed;
    Alcotest.test_case "meaningless fields rejected" `Quick test_field_rejection;
    Alcotest.test_case "no bare exceptions cross the boundary" `Quick
      test_no_bare_exceptions;
    Alcotest.test_case "protected batch success" `Quick
      test_protected_batch_success;
  ]
