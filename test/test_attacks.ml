(* The typed attack corpus: every malicious-kmod move from the paper's
   threat model (Fig. 9 mapping attacks, forged EINIT, swap-blob
   rollback/splicing) thrown at the real monitor through the model
   checker's world, plus the serving plane's cross-tenant and handshake
   replay/splice probes.  Each attack must die with a *typed* refusal
   ([Monitor.Security_violation] / a [Serve.reject]) — never an escaped
   exception — and the isolation audit must be green afterwards. *)

open Hyperenclave
module World = Mc_world
module Alphabet = Mc_alphabet

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- monitor corpus, via the model checker's world --------------------- *)

let must_apply w tr =
  match World.apply w tr with
  | World.Applied -> ()
  | World.Refused msg ->
      Alcotest.failf "setup %s refused: %s" (Alphabet.to_string tr) msg
  | World.Crashed msg ->
      Alcotest.failf "setup %s crashed: %s" (Alphabet.to_string tr) msg

let assert_green ~what w =
  match World.oracle w with
  | [] -> ()
  | findings ->
      Alcotest.failf "invariants broken after %s: %s" what
        (String.concat "; " findings)

(* Apply one attack and demand the typed refusal + a green audit. *)
let expect_refusal w atk =
  let name = Alphabet.to_string atk in
  Alcotest.(check bool) (name ^ " guard holds") true (World.enabled w atk);
  (match World.apply w atk with
  | World.Refused _ -> ()
  | World.Applied -> Alcotest.failf "%s applied without a refusal" name
  | World.Crashed msg -> Alcotest.failf "%s crashed untyped: %s" name msg);
  assert_green ~what:name w

(* Each entry: one malicious-kmod sequence — legal warm-up transitions,
   then the attack.  The warm-ups are real hypercalls on the real
   monitor; only the final step is hostile. *)
let corpus =
  let open Alphabet in
  [
    ("EADD onto an already-mapped page (Fig. 9a)", [ Create 0; Add 0 ],
     Atk_double_add 0);
    ("EADD outside ELRANGE", [ Create 0 ], Atk_add_outside 0);
    ("EINIT with a garbage signature", [ Create 0 ], Atk_bad_sig 0);
    ( "EINIT: valid vendor signature, forged MRENCLAVE",
      [ Create 0; Add 0; Add 0; Add_tcs 0 ],
      Atk_forged_measure 0 );
    ( "marshalling buffer aimed at reserved memory",
      [ Create 0; Add 0; Add 0; Add_tcs 0 ],
      Atk_ms_reserved 0 );
    ( "marshalling buffer overlapping ELRANGE",
      [ Create 0; Add 0; Add 0; Add_tcs 0 ],
      Atk_ms_overlap 0 );
    ( "EENTER before EINIT",
      [ Create 0; Add 0; Add 0; Add_tcs 0 ],
      Atk_enter_uninit 0 );
    ( "EENTER a TCS left busy by an AEX",
      [ Create 0; Add 0; Add 0; Add_tcs 0; Init 0; Enter 0; Aex 0 ],
      Atk_busy_enter 0 );
    ( "EEXIT to a non-sanctioned address",
      [ Create 0; Add 0; Add 0; Add_tcs 0; Init 0; Enter 0 ],
      Atk_wrong_exit 0 );
    ( "EREMOVE while a thread is inside",
      [ Create 0; Add 0; Add 0; Add_tcs 0; Init 0; Enter 0 ],
      Atk_remove_running 0 );
  ]

let test_monitor_corpus () =
  List.iter
    (fun (what, setup, atk) ->
      let w = World.create World.default_config in
      List.iter (must_apply w) setup;
      expect_refusal w atk;
      (* The refusal must not have wedged the slot: the same attack is
         still refused, and legal progress still works where defined. *)
      if World.enabled w atk then expect_refusal w atk;
      assert_green ~what w)
    corpus

(* --- swap-store rollback and splicing ----------------------------------- *)

(* These corrupt state the monitor cannot see at attack time, so they
   apply silently; the typed refusal is demanded at swap-in.  From the
   poisoned state, search every legal continuation (bounded DFS on the
   live world) and require that (a) nothing crashes, (b) the audit is
   green at every reachable state — a poisoned blob never becomes
   resident — and (c) some continuation actually forces the swap-in and
   collects the typed "swap-in" refusal. *)
let find_swap_refusal w ~depth =
  let found = ref None in
  let rec go d =
    if d < depth && !found = None then begin
      let ck = World.checkpoint w in
      List.iter
        (fun tr ->
          if !found = None && (not (Alphabet.is_attack tr)) && World.enabled w tr
          then begin
            World.push_frame_log w;
            (match World.apply w tr with
            | World.Crashed msg ->
                Alcotest.failf "crash on %s after swap attack: %s"
                  (Alphabet.to_string tr) msg
            | World.Refused msg ->
                assert_green ~what:(Alphabet.to_string tr) w;
                if contains msg "swap-in" then found := Some msg
            | World.Applied ->
                assert_green ~what:(Alphabet.to_string tr) w;
                go (d + 1));
            World.pop_restore_frames w;
            World.rollback w ck
          end)
        (World.alphabet w)
    end
  in
  go 0;
  !found

(* Tiny EPC (3 frames for a 4-page enclave) so pages must cycle in and
   out, giving the attacker old blobs to roll back. *)
let pressure_config =
  {
    World.default_config with
    World.epc_frames = 3;
    data_pages = 1;
    dyn_pages = 0;
    modes = [| Sgx_types.GU |];
  }

let build_under_pressure w =
  List.iter (must_apply w)
    Alphabet.[ Create 0; Add 0; Add_tcs 0; Init 0; Enter 0 ]

(* Cycle pages until the attack's guard holds: every Swap_out seals a
   fresh blob version, every Touch loads one back, so the archive soon
   holds an older authentic blob for a currently-stored key. *)
let drive_until w atk ~max_cycles =
  let cycles = ref 0 in
  while (not (World.enabled w atk)) && !cycles < max_cycles do
    incr cycles;
    (* Touch first (swap the page back in, consuming the stored blob),
       then Swap_out (seal a fresh version): the cycle ends with a blob
       *in the store*, which is where the rollback guard looks. *)
    if World.enabled w (Alphabet.Touch 0) then must_apply w (Alphabet.Touch 0);
    if World.enabled w Alphabet.Swap_out then must_apply w Alphabet.Swap_out
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%s reachable within %d swap cycles"
       (Alphabet.to_string atk) max_cycles)
    true
    (World.enabled w atk)

let test_swap_replay () =
  let w = World.create pressure_config in
  build_under_pressure w;
  drive_until w Alphabet.Atk_swap_replay ~max_cycles:16;
  must_apply w Alphabet.Atk_swap_replay;
  (* Silent corruption: store now holds a stale blob, audit still green
     (nothing resident yet). *)
  assert_green ~what:"atk_swap_replay (pre-swap-in)" w;
  match find_swap_refusal w ~depth:4 with
  | Some msg ->
      Alcotest.(check bool)
        (Printf.sprintf "rollback named in the refusal: %s" msg)
        true
        (contains msg "stale" || contains msg "integrity")
  | None -> Alcotest.fail "no continuation forced the stale blob's swap-in"

let test_swap_splice () =
  (* Two enclaves under shared EPC pressure; the attack serves enclave
     A's sealed page for one of enclave B's keys. *)
  let cfg =
    {
      World.default_config with
      World.epc_frames = 5;
      data_pages = 1;
      dyn_pages = 0;
    }
  in
  let w = World.create cfg in
  List.iter (must_apply w)
    Alphabet.
      [ Create 0; Add 0; Add_tcs 0; Init 0; Create 1; Add 1; Add_tcs 1; Init 1 ];
  drive_until w Alphabet.Atk_swap_splice ~max_cycles:16;
  must_apply w Alphabet.Atk_swap_splice;
  assert_green ~what:"atk_swap_splice (pre-swap-in)" w;
  match find_swap_refusal w ~depth:4 with
  | Some _ -> ()
  | None -> Alcotest.fail "no continuation forced the spliced blob's swap-in"

(* --- serving-plane probes ----------------------------------------------- *)

let echo_handlers = [ (1, fun _env input -> input) ]

let golden_of (p : Platform.t) =
  Verifier.golden_of_boot_log
    ~ek_public:(Tpm.ek_public p.Platform.tpm)
    (Monitor.boot_log p.Platform.monitor)

let tenant_config () =
  {
    (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
    Backend.handlers = echo_handlers;
  }

let client_for p ~identity ~seed =
  Serve.Client.create
    ~rng:(Rng.create ~seed)
    ~golden:(golden_of p)
    ~policy:
      {
        Verifier.expected_mrenclave = Some identity;
        expected_mrsigner = None;
        allow_debug = false;
      }
    ~expected_tenant:identity ()

let two_tenant_plane () =
  let p = Platform.create ~seed:9100L () in
  let plane = Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p Serve.default_config in
  let b1 = Serve.add_tenant plane ~name:"acme" (tenant_config ()) in
  let b2 = Serve.add_tenant plane ~name:"globex" (tenant_config ()) in
  let id b =
    match b.Backend.identity with Some i -> i | None -> Bytes.empty
  in
  let c1 = client_for p ~identity:(id b1) ~seed:9101L in
  let c2 = client_for p ~identity:(id b2) ~seed:9102L in
  (plane, c1, c2)

let establish plane ~tenant client =
  match Serve.handshake plane ~tenant (Serve.Client.hello client) with
  | Error r -> Alcotest.failf "handshake rejected: %a" Serve.pp_reject r
  | Ok accept -> (
      match Serve.Client.establish client accept with
      | Error r -> Alcotest.failf "establish failed: %a" Serve.pp_reject r
      | Ok () -> accept)

let expect_reject expected = function
  | Ok _ -> Alcotest.failf "expected %s rejection" expected
  | Error r ->
      Alcotest.(check string) "reject kind" expected (Serve.reject_name r)

let test_serve_cross_tenant_probe () =
  let plane, c1, c2 = two_tenant_plane () in
  ignore (establish plane ~tenant:"acme" c1);
  ignore (establish plane ~tenant:"globex" c2);
  (* Steal tenant globex's sealed envelope and aim it at tenant acme's
     session: the AAD binds (session, seq, ecall), so the AEAD check
     dies before any plaintext exists. *)
  let stolen = Serve.Client.request c2 ~ecall:1 (Bytes.of_string "secret") in
  expect_reject "bad-auth"
    (Serve.submit plane
       { stolen with Serve.session_id = Serve.Client.session_id c1 });
  (* The honest owner can still use the very same envelope. *)
  (match Serve.submit plane stolen with
  | Ok () -> ()
  | Error r -> Alcotest.failf "honest submit rejected: %a" Serve.pp_reject r);
  Serve.destroy plane

let test_serve_request_replay () =
  let plane, c1, _ = two_tenant_plane () in
  ignore (establish plane ~tenant:"acme" c1);
  let req = Serve.Client.request c1 ~ecall:1 (Bytes.of_string "once") in
  (match Serve.submit plane req with
  | Ok () -> ()
  | Error r -> Alcotest.failf "first submit rejected: %a" Serve.pp_reject r);
  (* Replaying the identical authenticated request is an out-of-order
     sequence number, not a crash and not a double execution. *)
  expect_reject "bad-sequence" (Serve.submit plane req);
  Serve.destroy plane

let test_serve_handshake_replay () =
  let plane, c1, _ = two_tenant_plane () in
  let hello = Serve.Client.hello c1 in
  (match Serve.handshake plane ~tenant:"acme" hello with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "first handshake rejected: %a" Serve.pp_reject r);
  expect_reject "replayed-nonce" (Serve.handshake plane ~tenant:"acme" hello);
  Serve.destroy plane

let test_serve_handshake_splice () =
  (* Splice: answer tenant acme's client with the key share from tenant
     globex's handshake.  The transcript binding in the quote must
     catch the swap. *)
  let plane, c1, c2 = two_tenant_plane () in
  let accept2 =
    match Serve.handshake plane ~tenant:"globex" (Serve.Client.hello c2) with
    | Ok a -> a
    | Error r -> Alcotest.failf "globex handshake rejected: %a" Serve.pp_reject r
  in
  (match Serve.handshake plane ~tenant:"acme" (Serve.Client.hello c1) with
  | Error r -> Alcotest.failf "acme handshake rejected: %a" Serve.pp_reject r
  | Ok accept1 ->
      expect_reject "channel-binding"
        (Serve.Client.establish c1
           { accept1 with Serve.server_kx = accept2.Serve.server_kx }));
  Serve.destroy plane

let suite =
  [
    Alcotest.test_case "malicious-kmod corpus (typed refusals)" `Quick
      test_monitor_corpus;
    Alcotest.test_case "EWB blob rollback refused at swap-in" `Quick
      test_swap_replay;
    Alcotest.test_case "EWB blob splice refused at swap-in" `Quick
      test_swap_splice;
    Alcotest.test_case "serve: cross-tenant envelope probe" `Quick
      test_serve_cross_tenant_probe;
    Alcotest.test_case "serve: request replay" `Quick test_serve_request_replay;
    Alcotest.test_case "serve: handshake replay" `Quick
      test_serve_handshake_replay;
    Alcotest.test_case "serve: handshake splice" `Quick
      test_serve_handshake_splice;
  ]
