(* Telemetry substrate (counters, histograms, trace ring) and its
   integration with the monitor's instrumentation. *)

open Hyperenclave

let test_counters () =
  let t = Telemetry.create () in
  Alcotest.(check int) "untouched counter" 0 (Telemetry.counter t "a");
  Telemetry.incr t "a";
  Telemetry.incr t "a";
  Telemetry.add t "b" 40;
  Alcotest.(check int) "incr twice" 2 (Telemetry.counter t "a");
  Alcotest.(check int) "add" 40 (Telemetry.counter t "b");
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Telemetry.add: negative increment") (fun () ->
      Telemetry.add t "b" (-1));
  let snap = Telemetry.snapshot t in
  Alcotest.(check (list (pair string int)))
    "snapshot sorted by name"
    [ ("a", 2); ("b", 40) ]
    snap.Telemetry.counters

let test_histogram_buckets () =
  let t = Telemetry.create () in
  List.iter (Telemetry.observe t "h") [ 0; 1; 2; 3; 4; 1000 ];
  let snap = Telemetry.snapshot t in
  let h = List.assoc "h" snap.Telemetry.histograms in
  Alcotest.(check int) "count" 6 h.Telemetry.count;
  Alcotest.(check int) "sum" 1010 h.Telemetry.sum;
  Alcotest.(check int) "min" 0 h.Telemetry.min;
  Alcotest.(check int) "max" 1000 h.Telemetry.max;
  (* log2 buckets: 0 -> [0], 1 -> [1], 2..3 -> [2], 4 -> [4],
     1000 -> [512]. *)
  Alcotest.(check (list (pair int int)))
    "bucket boundaries"
    [ (0, 1); (1, 1); (2, 2); (4, 1); (512, 1) ]
    h.Telemetry.buckets;
  Alcotest.(check (float 0.01)) "mean" (1010.0 /. 6.0) (Telemetry.mean h)

let test_ring_wraps () =
  let t = Telemetry.create ~ring_capacity:4 () in
  for i = 0 to 9 do
    Telemetry.trace t ~at:(i * 10) ~detail:(string_of_int i) "evt"
  done;
  let snap = Telemetry.snapshot t in
  Alcotest.(check int) "bounded" 4 (List.length snap.Telemetry.events);
  Alcotest.(check (list int))
    "only the most recent survive, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Telemetry.seq) snap.Telemetry.events);
  Alcotest.(check string)
    "details intact" "9"
    (List.nth snap.Telemetry.events 3).Telemetry.detail

let test_delta_counters () =
  let t = Telemetry.create () in
  Telemetry.add t "x" 5;
  Telemetry.add t "y" 1;
  let before = Telemetry.snapshot t in
  Telemetry.add t "x" 3;
  Telemetry.incr t "z";
  let after = Telemetry.snapshot t in
  Alcotest.(check (list (pair string int)))
    "only moved counters, new ones included"
    [ ("x", 3); ("z", 1) ]
    (Telemetry.delta_counters ~before ~after)

let test_json_shape () =
  let t = Telemetry.create () in
  Telemetry.incr t "switch.eenter";
  Telemetry.observe t "cycles.eenter" 1704;
  Telemetry.trace t ~at:7 ~detail:"enclave \"1\"" "eenter";
  let json = Telemetry.to_json (Telemetry.snapshot t) in
  let contains needle =
    let nh = String.length json and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub json i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "counter emitted" true (contains "\"switch.eenter\":1");
  Alcotest.(check bool) "histogram sum" true (contains "\"sum\":1704");
  Alcotest.(check bool)
    "quotes escaped in details" true
    (contains "enclave \\\"1\\\"");
  Alcotest.(check bool) "object shape" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}')

let test_reset () =
  let t = Telemetry.create () in
  Telemetry.incr t "a";
  Telemetry.observe t "h" 3;
  Telemetry.trace t ~at:0 "e";
  Telemetry.reset t;
  let snap = Telemetry.snapshot t in
  Alcotest.(check int) "no counters" 0 (List.length snap.Telemetry.counters);
  Alcotest.(check int) "no histograms" 0 (List.length snap.Telemetry.histograms);
  Alcotest.(check int) "no events" 0 (List.length snap.Telemetry.events)

let test_monitor_counts_match_enclave_stats () =
  (* The monitor-wide counters and the per-enclave stats record are two
     views of the same events; with a single enclave they must agree. *)
  let p = Platform.create ~seed:7100L () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) input ->
              ignore (tenv.Tenv.ocall ~id:9 ~data:input Edge.In_out);
              input );
        ]
      ~ocalls:[ (9, fun data -> data) ]
  in
  for _ = 1 to 3 do
    ignore
      (Urts.ecall handle ~id:1 ~data:(Bytes.of_string "x") ~direction:Edge.In_out ())
  done;
  let tel = Monitor.telemetry p.Platform.monitor in
  let stats = Urts.stats handle in
  Alcotest.(check int) "sdk.ecall" 3 (Telemetry.counter tel "sdk.ecall");
  Alcotest.(check int) "sdk.ocall vs stats" stats.Enclave.ocalls
    (Telemetry.counter tel "sdk.ocall");
  (* Each ECALL is one EENTER/EEXIT pair; each OCALL adds one more of
     each (exit to the handler, re-enter after). *)
  Alcotest.(check int)
    "eenter = ecalls + ocalls"
    (Telemetry.counter tel "sdk.ecall" + stats.Enclave.ocalls)
    (Telemetry.counter tel "switch.eenter");
  Alcotest.(check int)
    "eexit matches eenter"
    (Telemetry.counter tel "switch.eenter")
    (Telemetry.counter tel "switch.eexit");
  Alcotest.(check int) "no AEX in this run" 0
    (Telemetry.counter tel "switch.aex");
  (* Cycle histograms carry one sample per switch. *)
  let snap = Telemetry.snapshot tel in
  let eenter_hist = List.assoc "cycles.eenter" snap.Telemetry.histograms in
  Alcotest.(check int)
    "one eenter sample per switch"
    (Telemetry.counter tel "switch.eenter")
    eenter_hist.Telemetry.count;
  Alcotest.(check bool) "samples non-trivial" true (eenter_hist.Telemetry.min > 0);
  Urts.destroy handle

let suite =
  [
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "trace ring wraps" `Quick test_ring_wraps;
    Alcotest.test_case "delta counters" `Quick test_delta_counters;
    Alcotest.test_case "JSON rendering" `Quick test_json_shape;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "monitor counters vs enclave stats" `Quick
      test_monitor_counts_match_enclave_stats;
  ]
