(* Primary OS: boot chain, processes, swapping, pinning, the kernel
   module, and the native/VM translation toggle. *)

open Hyperenclave

let platform ?(seed = 2000L) () = Platform.create ~seed ()

let test_boot_chain () =
  let rng = Rng.create ~seed:5L in
  let chain = Boot.default_chain rng in
  Alcotest.(check int) "five components" 5 (List.length chain);
  let clock = Cycles.create () in
  let tpm =
    Hyperenclave.Tpm.manufacture ~clock ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:6L)
  in
  let events = Boot.measured_boot tpm chain in
  Alcotest.(check int) "one event per component" 5 (List.length events);
  List.iter2
    (fun (c : Boot.component) (e : Monitor.boot_event) ->
      Alcotest.(check string) "label" c.Boot.name e.Monitor.label;
      Alcotest.(check bool)
        "measurement is the image hash" true
        (Bytes.equal e.Monitor.measurement (Sha256.digest_bytes c.Boot.image)))
    chain events;
  (* PCR 0 reflects the CRTM. *)
  Alcotest.(check bool)
    "pcr extended" false
    (Bytes.equal
       (Pcr.read (Hyperenclave.Tpm.pcrs tpm) ~index:0)
       (Bytes.make 32 '\000'))

let test_boot_tamper () =
  let rng = Rng.create ~seed:5L in
  let chain = Boot.default_chain rng in
  let tampered = Boot.tamper chain ~name:"kernel" in
  List.iter2
    (fun (a : Boot.component) (b : Boot.component) ->
      if a.Boot.name = "kernel" then
        Alcotest.(check bool) "kernel image changed" false
          (Bytes.equal a.Boot.image b.Boot.image)
      else
        Alcotest.(check bool) "others unchanged" true
          (Bytes.equal a.Boot.image b.Boot.image))
    chain tampered

let test_process_memory () =
  let p = platform () in
  let k = p.Platform.kernel in
  let proc = p.Platform.proc in
  let va = Kernel.mmap k proc ~len:8192 ~populate:true in
  Kernel.proc_write k proc ~va (Bytes.of_string "user data");
  Alcotest.(check string)
    "read back" "user data"
    (Bytes.to_string (Kernel.proc_read k proc ~va ~len:9));
  (* Demand paging in the heap. *)
  let brk = Kernel.brk_grow k proc ~len:4096 in
  Kernel.proc_write k proc ~va:brk (Bytes.of_string "heap");
  Alcotest.(check string)
    "heap demand-paged" "heap"
    (Bytes.to_string (Kernel.proc_read k proc ~va:brk ~len:4));
  (* Unowned address segfaults. *)
  try
    ignore (Kernel.proc_read k proc ~va:0x10 ~len:1);
    Alcotest.fail "expected Segfault"
  with Kernel.Segfault _ -> ()

let test_swap_roundtrip () =
  let p = platform () in
  let k = p.Platform.kernel in
  let proc = p.Platform.proc in
  let va = Kernel.mmap k proc ~len:4096 ~populate:true in
  Kernel.proc_write k proc ~va (Bytes.of_string "swap me");
  (match Kernel.swap_out k proc ~vpn:(va / 4096) with
  | Kernel.Swapped -> ()
  | Kernel.Pinned_refused -> Alcotest.fail "unexpected pin refusal");
  Alcotest.(check int) "in swap" 1 (Kernel.swapped_count k);
  (* Touch faults it back in with contents intact. *)
  Alcotest.(check string)
    "swap-in preserves contents" "swap me"
    (Bytes.to_string (Kernel.proc_read k proc ~va ~len:7));
  Alcotest.(check int) "swap slot freed" 0 (Kernel.swapped_count k)

let test_pinning_refuses_swap () =
  let p = platform () in
  let k = p.Platform.kernel in
  let proc = p.Platform.proc in
  let va = Kernel.mmap k proc ~len:4096 ~populate:true in
  Kmod.ioctl_pin_range p.Platform.kmod proc ~va ~len:4096;
  (match Kernel.swap_out k proc ~vpn:(va / 4096) with
  | Kernel.Pinned_refused -> ()
  | Kernel.Swapped -> Alcotest.fail "pinned page must not swap");
  Process.unpin proc ~vpn:(va / 4096);
  match Kernel.swap_out k proc ~vpn:(va / 4096) with
  | Kernel.Swapped -> ()
  | Kernel.Pinned_refused -> Alcotest.fail "unpinned page should swap"

let test_pin_requires_resident () =
  let p = platform () in
  let proc = p.Platform.proc in
  let va = Kernel.mmap p.Platform.kernel proc ~len:4096 ~populate:false in
  Alcotest.check_raises "unpopulated pin rejected"
    (Invalid_argument
       (Printf.sprintf "ioctl_pin_range: page 0x%x not resident" (va / 4096)))
    (fun () -> Kmod.ioctl_pin_range p.Platform.kmod proc ~va ~len:4096)

let test_marshalling_buffer_pinned_by_loader () =
  (* Sec. 5.3: the uRTS pins the marshalling buffer; the OS cannot swap
     it out from under the enclave. *)
  let p = platform () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  (* Find one pinned page (any page of the ms buffer area). *)
  let pinned_count = Hashtbl.length p.Platform.proc.Process.pinned in
  Alcotest.(check bool) "loader pinned pages" true (pinned_count > 0);
  let some_pinned = Hashtbl.fold (fun vpn () _ -> Some vpn) p.Platform.proc.Process.pinned None in
  (match some_pinned with
  | Some vpn -> (
      match Kernel.swap_out p.Platform.kernel p.Platform.proc ~vpn with
      | Kernel.Pinned_refused -> ()
      | Kernel.Swapped -> Alcotest.fail "ms page swapped")
  | None -> Alcotest.fail "no pinned page");
  Urts.destroy handle

(* A failed pin ioctl must unwind every pin it already took (PR 4
   regression: the old code returned with the prefix still pinned, so
   those pages stayed unreclaimable for the life of the process). *)
let test_pin_range_unwinds_on_failure () =
  let p = platform () in
  let proc = p.Platform.proc in
  let before = Process.pinned_count proc in
  (* Three resident pages, then swap the third out so it is no longer
     resident: the pin walk succeeds twice, then fails on page 3. *)
  let va = Kernel.mmap p.Platform.kernel proc ~len:(3 * 4096) ~populate:true in
  (match Kernel.swap_out p.Platform.kernel proc ~vpn:((va / 4096) + 2) with
  | Kernel.Swapped -> ()
  | Kernel.Pinned_refused -> Alcotest.fail "fresh page refused swap");
  (try
     Kmod.ioctl_pin_range p.Platform.kmod proc ~va ~len:(3 * 4096);
     Alcotest.fail "pin over a non-resident page must fail"
   with Invalid_argument _ -> ());
  Alcotest.(check int)
    "failed pin left no residue" before
    (Process.pinned_count proc);
  (* The unwound pages are still swappable — nothing leaked a pin. *)
  (match Kernel.swap_out p.Platform.kernel proc ~vpn:(va / 4096) with
  | Kernel.Swapped -> ()
  | Kernel.Pinned_refused -> Alcotest.fail "unwound page still pinned")

(* Destroying an enclave must unpin its marshalling buffer (PR 4
   regression: EREMOVE freed the EPC but the ms pins leaked, pinning a
   256 KB region per destroyed enclave forever). *)
let test_destroy_unpins_marshalling_buffer () =
  let p = platform () in
  let proc = p.Platform.proc in
  let before = Process.pinned_count proc in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:[ (1, fun _ input -> input) ]
      ~ocalls:[]
  in
  Alcotest.(check bool)
    "loader pinned the ms buffer" true
    (Process.pinned_count proc > before);
  ignore (Urts.ecall handle ~id:1 ~data:(Bytes.of_string "x") ~direction:Edge.In_out ());
  Urts.destroy handle;
  Alcotest.(check int)
    "destroy unpinned everything" before
    (Process.pinned_count proc);
  (* Repeat to show it holds across create/destroy cycles. *)
  let handle2 =
    Urts.create ~kmod:p.Platform.kmod ~proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed = "pin2" }
      ~ecalls:[ (1, fun _ input -> input) ]
      ~ocalls:[]
  in
  Urts.destroy handle2;
  Alcotest.(check int)
    "second cycle also clean" before
    (Process.pinned_count proc)

(* The batched hypercall: one EBATCH carries several requests and the
   results come back slot for slot, in order. *)
let test_ioctl_batch () =
  let p = platform () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:[ (1, fun _ input -> input) ]
      ~ocalls:[]
  in
  let enclave = Urts.enclave handle in
  let results =
    Kmod.ioctl_batch p.Platform.kmod
      [
        Hypercall.Ereport { enclave; report_data = Bytes.of_string "batch" };
        Hypercall.Egetkey { enclave; name = Sgx_types.Seal_key_mrenclave };
      ]
  in
  (match results with
  | [ Hypercall.Report r; Hypercall.Key k ] ->
      Alcotest.(check bool)
        "report verifies" true
        (Monitor.verify_report p.Platform.monitor r);
      Alcotest.(check bool) "key non-empty" true (Bytes.length k > 0)
  | _ -> Alcotest.fail "batch results out of shape");
  Urts.destroy handle

(* The batched ORET path (PR 6): the monitor bounds the reply-ring slot
   count before touching the parked TCS, so a forged OBATCH is refused
   as a security violation and the enclave stays serviceable. *)
let test_ioctl_obatch_bounds () =
  let p = platform () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:[ (1, fun _ input -> input) ]
      ~ocalls:[]
  in
  let enclave = Urts.enclave handle in
  let tcs = Option.get (Enclave.free_tcs enclave) in
  List.iter
    (fun slots ->
      try
        Kmod.ioctl_obatch p.Platform.kmod ~enclave ~tcs ~return_va:0 ~slots;
        Alcotest.failf "OBATCH with %d slots accepted" slots
      with Monitor.Security_violation _ -> ())
    [ 0; -1; 65; 1024 ];
  let out = Urts.ecall handle ~id:1 ~data:(Bytes.of_string "ok") ~direction:Edge.In_out () in
  Alcotest.(check string) "enclave survives refused OBATCH" "ok" (Bytes.to_string out);
  Urts.destroy handle

let test_fork_exit_frees_frames () =
  let p = platform () in
  let k = p.Platform.kernel in
  let child = Kernel.spawn k in
  Kernel.switch_to k child;
  let va = Kernel.mmap k child ~len:(16 * 4096) ~populate:true in
  ignore va;
  Kernel.exit_process k child;
  Alcotest.(check bool) "child dead" false child.Process.alive;
  Kernel.switch_to k p.Platform.proc

let test_with_translation () =
  let p = platform () in
  let k = p.Platform.kernel in
  Alcotest.(check bool) "demoted after launch" true (Kernel.demoted k);
  let nested_inside =
    Kernel.with_translation k ~nested:false (fun () -> Mmu.nested p.Platform.cpu)
  in
  Alcotest.(check bool) "native mode strips NPT" false nested_inside;
  let nested_back = Mmu.nested p.Platform.cpu in
  Alcotest.(check bool) "restored" true nested_back

let test_controlled_channel_absence () =
  (* The kernel records its own processes' faults, but enclave faults are
     handled by the monitor: nothing enclave-related ever shows up in the
     kernel's trace. *)
  let p = platform () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              (* Fault in a bunch of fresh enclave pages. *)
              for i = 0 to 9 do
                tenv.Tenv.write
                  ~va:(0x1_0000_0000 + ((1000 + i) * 4096))
                  (Bytes.of_string "x")
              done;
              Bytes.empty );
        ]
      ~ocalls:[]
  in
  let trace_before = List.length (Kernel.pf_trace p.Platform.kernel) in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  let trace_after = List.length (Kernel.pf_trace p.Platform.kernel) in
  Alcotest.(check int)
    "OS saw no enclave faults" trace_before trace_after;
  Alcotest.(check bool)
    "the faults did happen" true
    ((Urts.stats handle).Enclave.page_faults >= 10);
  Urts.destroy handle

let test_round_robin () =
  let p = platform () in
  let k = p.Platform.kernel in
  let a = Kernel.spawn k and b = Kernel.spawn k and c = Kernel.spawn k in
  List.iter (Kernel.enqueue k) [ a; b; c ];
  Kernel.enqueue k a (* idempotent *);
  let order =
    List.init 6 (fun _ ->
        match Kernel.schedule k with
        | Some proc -> proc.Process.pid
        | None -> -1)
  in
  Alcotest.(check (list int))
    "fair rotation"
    [ a.Process.pid; b.Process.pid; c.Process.pid;
      a.Process.pid; b.Process.pid; c.Process.pid ]
    order;
  Alcotest.(check bool)
    "scheduled process is on the CPU" true
    (Kernel.current k = Some c);
  Kernel.dequeue k b;
  let next_two =
    List.init 2 (fun _ ->
        match Kernel.schedule k with Some p -> p.Process.pid | None -> -1)
  in
  Alcotest.(check (list int)) "dequeue removes" [ a.Process.pid; c.Process.pid ]
    next_two;
  Kernel.dequeue k a;
  Kernel.dequeue k c;
  Alcotest.(check bool) "empty queue" true (Kernel.schedule k = None);
  Kernel.switch_to k p.Platform.proc

let suite =
  [
    Alcotest.test_case "round-robin scheduler" `Quick test_round_robin;
    Alcotest.test_case "boot chain" `Quick test_boot_chain;
    Alcotest.test_case "boot tamper helper" `Quick test_boot_tamper;
    Alcotest.test_case "process memory" `Quick test_process_memory;
    Alcotest.test_case "swap out/in" `Quick test_swap_roundtrip;
    Alcotest.test_case "pinning refuses swap" `Quick test_pinning_refuses_swap;
    Alcotest.test_case "pin requires residency" `Quick test_pin_requires_resident;
    Alcotest.test_case "ms buffer pinned by loader" `Quick
      test_marshalling_buffer_pinned_by_loader;
    Alcotest.test_case "failed pin_range unwinds" `Quick
      test_pin_range_unwinds_on_failure;
    Alcotest.test_case "destroy unpins ms buffer" `Quick
      test_destroy_unpins_marshalling_buffer;
    Alcotest.test_case "EBATCH ioctl" `Quick test_ioctl_batch;
    Alcotest.test_case "OBATCH slot bounds" `Quick test_ioctl_obatch_bounds;
    Alcotest.test_case "fork/exit frames" `Quick test_fork_exit_frees_frames;
    Alcotest.test_case "with_translation toggle" `Quick test_with_translation;
    Alcotest.test_case "no controlled channel on enclaves" `Quick
      test_controlled_channel_absence;
  ]
