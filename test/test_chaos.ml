(* Chaos suite: hundreds of seeded fault schedules against real
   workloads through the unified backend layer.

   The oracle is the trichotomy — under any injected fault schedule a
   call must end in exactly one of
     - clean success (with a bit-correct reply: no silent corruption),
     - a clean typed error ([Fault.Injected] / [Urts.Enclave_error] /
       a rejected argument),
     - a deliberate monitor refusal ([Monitor.Security_violation]),
   and the monitor invariant checker must be green at the instant of
   every injection (sites fire pre-mutation) and after every schedule.

   Every schedule derives from a printed integer seed; a failure message
   carries the seed and the decoded plan, and re-running the suite (or
   [Fault.plan_of_seed <seed>L] by hand) reproduces it exactly. *)

open Hyperenclave

(* ------------------------------------------------------------------ *)
(* Aggregate accounting across the whole suite                         *)

let tel = Telemetry.create ()
let schedules = ref 0
let successes = ref 0
let typed_errors = ref 0
let violations = ref 0
let sites_fired : (string, unit) Hashtbl.t = Hashtbl.create 16

let record = function
  | Backend.Success _ -> incr successes
  | Backend.Typed_error _ -> incr typed_errors
  | Backend.Violation _ -> incr violations

(* The trichotomy classifier for paths that don't go through
   [Backend.protected_call] (enclave build, quote generation). *)
let classify f =
  match f () with
  | v -> Backend.Success v
  | exception Monitor.Security_violation msg -> Backend.Violation msg
  | exception Fault.Injected { site; kind } ->
      Backend.Typed_error
        (Printf.sprintf "injected %s fault at %s" (Fault.kind_name kind) site)
  | exception Urts.Enclave_error msg -> Backend.Typed_error ("enclave: " ^ msg)
  | exception Invalid_argument msg ->
      Backend.Typed_error ("invalid-argument: " ^ msg)

(* Run one schedule body; anything escaping the trichotomy (an
   unexpected exception, a corrupted reply reported via [failwith])
   fails the test with the reproducing seed and plan. *)
let with_context ~group ~seed ~plan f =
  incr schedules;
  match f () with
  | () -> Fault.clear ()
  | exception exn ->
      Fault.clear ();
      Alcotest.failf "[%s] seed=%d plan=%s: %s" group seed plan
        (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* The workload: echo, a page-walking heap check, interrupt + OCALL    *)

let handlers =
  [
    ( 1,
      fun (env : Backend.env) input ->
        env.Backend.compute 200;
        Bytes.map Char.uppercase_ascii input );
    ( 2,
      (* Write a recognizable pattern across [n] heap pages, then read
         everything back; the returned bad-page count is the suite's
         silent-corruption detector.  On the HyperEnclave backends this
         demand-commits real EPC frames, so injected EPC pressure turns
         into genuine EWB/ELDU traffic. *)
      fun (env : Backend.env) input ->
        let pages = int_of_string (Bytes.to_string input) in
        let stamp i = Printf.sprintf "pg-%05d" i in
        let bad = ref 0 in
        for i = 0 to pages - 1 do
          env.Backend.heap_write ~off:(i * 4096) (Bytes.of_string (stamp i))
        done;
        for i = 0 to pages - 1 do
          if
            Bytes.to_string (env.Backend.heap_read ~off:(i * 4096) ~len:8)
            <> stamp i
          then incr bad
        done;
        Bytes.of_string (string_of_int !bad) );
    ( 3,
      fun (env : Backend.env) input ->
        env.Backend.interrupt ();
        env.Backend.ocall ~id:9 ~data:input () );
  ]

let ocalls =
  [
    ( 9,
      fun data ->
        let n = Bytes.length data in
        Bytes.init n (fun i -> Bytes.get data (n - 1 - i)) );
  ]

let payload seed =
  let n = 24 + (seed * 7 mod 200) in
  Bytes.init n (fun i -> Char.chr (97 + ((seed + i) mod 26)))

let rev s =
  let n = Bytes.length s in
  Bytes.to_string (Bytes.init n (fun i -> Bytes.get s (n - 1 - i)))

(* The calls one schedule issues, with the reply each must produce if it
   ends in Success. *)
let call_list seed =
  let data = payload seed in
  let pages = if seed mod 6 = 0 then 400 else 96 in
  [
    (1, data, String.uppercase_ascii (Bytes.to_string data));
    (2, Bytes.of_string (string_of_int pages), "0");
    (3, data, rev data);
  ]

(* A 512-frame EPC so page walks and injected EPC pressure actually
   evict (same sizing as the monitor overcommit tests). *)
let small_platform seed =
  Platform.create
    ~seed:(Int64.of_int (0xC0DE0000 + seed))
    ~phys_mb:134 ~os_mb:128 ~monitor_mb:4 ()

let arm_observer m inv_failures =
  Fault.on_inject (fun ~site _kind ->
      Hashtbl.replace sites_fired site ();
      match Invariants.check m with
      | [] -> ()
      | findings ->
          inv_failures := (site, Invariants.summary findings) :: !inv_failures)

let assert_clean ~what m inv_failures =
  (match !inv_failures with
  | [] -> ()
  | (site, summary) :: _ ->
      failwith
        (Printf.sprintf "invariants broken at injection (%s, %s): %s" what site
           summary));
  match Invariants.check m with
  | [] -> ()
  | findings ->
      failwith
        (Printf.sprintf "invariants broken after %s: %s" what
           (Invariants.summary findings))

(* ------------------------------------------------------------------ *)
(* Group 1: faults injected while real workloads run (per mode)        *)

(* Only sites crossed on the ECALL path — build-time sites get their own
   group below, so no spec here is dead weight. *)
let run_sites =
  [
    "epc.alloc";
    "epc.swap_in";
    "switch.aex";
    "switch.eresume";
    "sdk.ms_copy_in";
    "sdk.ms_copy_out";
    "sdk.aex_storm";
  ]

let run_schedule ~mode ~seed =
  let plan = Fault.plan_of_seed ~sites:run_sites ~faults:4 (Int64.of_int seed) in
  let plan_str = Fault.plan_to_string plan in
  let group = "run:" ^ Sgx_types.mode_name mode in
  incr schedules;
  (* The schedule body, parameterized over the ECALL list so a failure
     can be replayed on sub-lists by the trace minimizer.  Replays skip
     the aggregate counters — only the primary run is accounting. *)
  let exec ~accounting calls =
    let p = small_platform seed in
    let m = p.Platform.monitor in
    let backend = Backend.hyperenclave p ~mode ~handlers ~ocalls () in
    let inv_failures = ref [] in
    Fault.install ~telemetry:tel plan;
    arm_observer m inv_failures;
    List.iter
      (fun (id, data, expect) ->
        match
          Backend.protected_call backend ~id ~data ~direction:Edge.In_out ()
        with
        | Backend.Success reply as o ->
            if accounting then record o;
            if Bytes.to_string reply <> expect then
              failwith
                (Printf.sprintf "silent corruption on ECALL %d: got %S, wanted %S"
                   id
                   (Bytes.to_string reply) expect)
        | o -> if accounting then record o)
      calls;
    Fault.clear ();
    assert_clean ~what:"schedule" m inv_failures;
    backend.Backend.destroy ();
    assert_clean ~what:"destroy" m inv_failures
  in
  match exec ~accounting:true (call_list seed) with
  | () -> Fault.clear ()
  | exception exn ->
      Fault.clear ();
      (* Shrink the failing schedule to a 1-minimal ECALL list (same
         seed, same fault plan) and print it as a replayable trace next
         to the seed, via the model checker's shared trace machinery. *)
      let still_fails calls =
        match exec ~accounting:false calls with
        | () ->
            Fault.clear ();
            false
        | exception _ ->
            Fault.clear ();
            true
      in
      let minimal = Mc_trace.minimize ~replay:still_fails (call_list seed) in
      let steps =
        List.map
          (fun (id, data, _) ->
            Mc_trace.step
              ~detail:(Printf.sprintf "%d-byte payload" (Bytes.length data))
              (Printf.sprintf "ecall[%d]" id))
          minimal
      in
      Alcotest.failf "[%s] seed=%d plan=%s: %s@.minimized call trace (%d steps):@.%s"
        group seed plan_str (Printexc.to_string exn) (List.length minimal)
        (Mc_trace.to_string steps)

(* ------------------------------------------------------------------ *)
(* Group 2: faults injected during platform boot and enclave build     *)

let build_sites = [ "hypercall.dispatch"; "os.ioctl"; "epc.alloc"; "tpm.seal" ]

let build_schedule ~mode ~seed =
  let plan =
    Fault.plan_of_seed ~sites:build_sites ~faults:3 ~max_nth:8
      (Int64.of_int (500 + seed))
  in
  let plan_str = Fault.plan_to_string plan in
  let group = "build:" ^ Sgx_types.mode_name mode in
  with_context ~group ~seed ~plan:plan_str (fun () ->
      Fault.install ~telemetry:tel plan;
      (* No invariant observer here: sites fire mid-launch, before the
         monitor is a checkable whole.  The post-build sweep below is the
         oracle instead. *)
      Fault.on_inject (fun ~site _kind -> Hashtbl.replace sites_fired site ());
      let outcome =
        classify (fun () ->
            let p = small_platform (1000 + seed) in
            let backend = Backend.hyperenclave p ~mode ~handlers ~ocalls () in
            let reply =
              backend.Backend.call ~id:1 ~data:(Bytes.of_string "boot")
                ~direction:Edge.In_out ()
            in
            Fault.clear ();
            assert_clean ~what:"build" p.Platform.monitor (ref []);
            backend.Backend.destroy ();
            reply)
      in
      record outcome;
      match outcome with
      | Backend.Success reply ->
          if Bytes.to_string reply <> "BOOT" then
            failwith
              (Printf.sprintf "silent corruption after faulted build: %S"
                 (Bytes.to_string reply))
      | Backend.Typed_error _ | Backend.Violation _ -> ())

(* ------------------------------------------------------------------ *)
(* Group 3: the SGX baseline backend under armed plans                 *)

(* The Intel model crosses none of HyperEnclave's trust boundaries, so
   an armed plan must never fire there — instrumentation must not leak
   into the comparison baseline. *)
let sgx_schedule ~seed =
  let plan = Fault.plan_of_seed ~faults:4 (Int64.of_int (2000 + seed)) in
  let plan_str = Fault.plan_to_string plan in
  with_context ~group:"sgx" ~seed ~plan:plan_str (fun () ->
      let backend =
        Backend.sgx ~clock:(Cycles.create ()) ~cost:Cost_model.default
          ~rng:(Rng.create ~seed:(Int64.of_int (3000 + seed)))
          ~handlers ~ocalls ()
      in
      Fault.install ~telemetry:tel plan;
      List.iter
        (fun (id, data, expect) ->
          match
            Backend.protected_call backend ~id ~data ~direction:Edge.In_out ()
          with
          | Backend.Success reply as o ->
              record o;
              if Bytes.to_string reply <> expect then
                failwith (Printf.sprintf "SGX backend corrupted ECALL %d" id)
          | o ->
              record o;
              failwith
                (Printf.sprintf "plan fired on the SGX baseline: %s"
                   (Backend.outcome_name o)))
        (call_list seed);
      if Fault.injected_count () <> 0 then
        failwith "fault plane armed itself inside the SGX model";
      Fault.clear ();
      backend.Backend.destroy ())

(* ------------------------------------------------------------------ *)
(* Group 4: remote attestation under TPM faults                        *)

let attest_schedule ~seed =
  let plan =
    Fault.plan_of_seed ~sites:[ "tpm.quote" ] ~faults:2 ~max_nth:2
      (Int64.of_int (4000 + seed))
  in
  let plan_str = Fault.plan_to_string plan in
  with_context ~group:"attest" ~seed ~plan:plan_str (fun () ->
      let p = small_platform (5000 + seed) in
      let m = p.Platform.monitor in
      let handle =
        Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
          ~rng:p.Platform.rng ~signer:p.Platform.signer
          ~config:(Urts.default_config Sgx_types.GU)
          ~ecalls:[ (1, fun _tenv input -> input) ]
          ~ocalls:[]
      in
      let inv_failures = ref [] in
      Fault.install ~telemetry:tel plan;
      arm_observer m inv_failures;
      for i = 1 to 2 do
        let nonce = Bytes.of_string (Printf.sprintf "nonce-%d-%d" seed i) in
        match
          classify (fun () ->
              let quote =
                Urts.gen_quote handle ~report_data:(Bytes.of_string "chaos")
                  ~nonce
              in
              (* Round-trip through the wire format: a quote that
                 survived a fault schedule must still parse. *)
              match Quote_wire.decode (Quote_wire.encode quote) with
              | Result.Ok _ -> Bytes.of_string "ok"
              | Result.Error e -> failwith ("quote wire roundtrip: " ^ e))
        with
        | Backend.Success _ as o -> record o
        | o -> record o
      done;
      Fault.clear ();
      assert_clean ~what:"attestation" m inv_failures;
      Urts.destroy handle)

(* ------------------------------------------------------------------ *)
(* Alcotest cases                                                      *)

let seeds_per_mode = 60
let build_seeds = 8
let sgx_seeds = 16
let attest_seeds = 24

let test_run_chaos mode () =
  for seed = 0 to seeds_per_mode - 1 do
    run_schedule ~mode ~seed
  done

let test_build_chaos () =
  List.iter
    (fun mode ->
      for seed = 0 to build_seeds - 1 do
        build_schedule ~mode ~seed
      done)
    Sgx_types.all_modes

let test_sgx_chaos () =
  for seed = 0 to sgx_seeds - 1 do
    sgx_schedule ~seed
  done

let test_attest_chaos () =
  for seed = 0 to attest_seeds - 1 do
    attest_schedule ~seed
  done

let test_aggregate () =
  (* The acceptance floor: enough schedules, real injections, all three
     outcome classes possible, broad site coverage, retries observed. *)
  let injected = Telemetry.counter tel "fault.injected" in
  let survived = Telemetry.counter tel "fault.survived" in
  let retried = Telemetry.counter tel "fault.retried" in
  let fired = Hashtbl.length sites_fired in
  Alcotest.(check bool)
    (Printf.sprintf "at least 200 schedules (%d)" !schedules)
    true (!schedules >= 200);
  Alcotest.(check bool)
    (Printf.sprintf "faults actually injected (%d)" injected)
    true (injected >= 100);
  Alcotest.(check bool)
    (Printf.sprintf "transient faults absorbed (survived=%d retried=%d)"
       survived retried)
    true
    (survived >= 20 && retried >= 10);
  Alcotest.(check bool)
    (Printf.sprintf "clean successes under fault load (%d)" !successes)
    true (!successes >= 100);
  Alcotest.(check bool)
    (Printf.sprintf "typed errors observed (%d)" !typed_errors)
    true (!typed_errors >= 20);
  Alcotest.(check bool)
    (Printf.sprintf "site coverage (%d sites fired: %s)" fired
       (String.concat ", "
          (List.sort compare
             (Hashtbl.fold (fun s () acc -> s :: acc) sites_fired []))))
    true (fired >= 8);
  (* Per-site telemetry agrees with the aggregate counter. *)
  Alcotest.(check int)
    "per-site counters sum to the total" injected
    (Telemetry.sum_prefix tel "fault.injected.")

let suite =
  [
    Alcotest.test_case "run chaos (GU)" `Slow (test_run_chaos Sgx_types.GU);
    Alcotest.test_case "run chaos (HU)" `Slow (test_run_chaos Sgx_types.HU);
    Alcotest.test_case "run chaos (P)" `Slow (test_run_chaos Sgx_types.P);
    Alcotest.test_case "build chaos" `Slow test_build_chaos;
    Alcotest.test_case "SGX baseline inert" `Quick test_sgx_chaos;
    Alcotest.test_case "attestation chaos" `Slow test_attest_chaos;
    Alcotest.test_case "aggregate coverage" `Quick test_aggregate;
  ]
