(* The deterministic fault-injection plane and the monitor invariant
   checker: plan derivation, site semantics, retry accounting, and the
   checker's ability to both pass clean states and flag corrupted ones.
   The chaos suite (test_chaos.ml) exercises the same machinery at scale
   against real workloads. *)

open Hyperenclave

(* Every test arms the global plane; make sure no schedule leaks into
   the rest of the suite even when an assertion throws. *)
let with_plane f =
  Fun.protect ~finally:Fault.clear f

let no_backoff _ = ()

let test_plan_determinism () =
  let a = Fault.plan_of_seed 7001L in
  let b = Fault.plan_of_seed 7001L in
  Alcotest.(check string)
    "equal seeds give equal plans" (Fault.plan_to_string a)
    (Fault.plan_to_string b);
  (* Across a spread of seeds the plans must actually vary. *)
  let distinct =
    List.sort_uniq compare
      (List.init 32 (fun i ->
           Fault.plan_to_string (Fault.plan_of_seed (Int64.of_int (9000 + i)))))
  in
  Alcotest.(check bool)
    (Printf.sprintf "plans vary across seeds (%d distinct/32)"
       (List.length distinct))
    true
    (List.length distinct > 16);
  (* Derivation must not touch the platform RNG streams: two platforms
     built from the same seed, one with plan derivation interleaved,
     stay identical. *)
  let p1 = Platform.create ~seed:7002L () in
  ignore (Fault.plan_of_seed 7003L);
  let p2 = Platform.create ~seed:7002L () in
  Alcotest.(check bool)
    "plan derivation leaves platform streams untouched" true
    (Bytes.equal (Monitor.hapk p1.Platform.monitor)
       (Monitor.hapk p2.Platform.monitor))

let test_explicit_schedule () =
  with_plane (fun () ->
      Fault.install
        [ { Fault.site = "tpm.seal"; nth = 3; kind = Fault.Permanent } ];
      Fault.point "tpm.seal";
      Fault.point "tpm.seal";
      (match Fault.point "tpm.seal" with
      | () -> Alcotest.fail "third hit did not fire"
      | exception Fault.Injected { site; kind } ->
          Alcotest.(check string) "site" "tpm.seal" site;
          Alcotest.(check string) "kind" "permanent" (Fault.kind_name kind));
      (* A spec fires once; the fourth hit passes. *)
      Fault.point "tpm.seal";
      Alcotest.(check int) "hit counter" 4 (Fault.hits "tpm.seal");
      Alcotest.(check int) "one injection" 1 (Fault.injected_count ()))

let test_disarmed_noop () =
  Fault.clear ();
  Alcotest.(check bool) "inactive" false (Fault.active ());
  Alcotest.(check bool) "check is None" true (Fault.check "os.ioctl" = None);
  Fault.point "os.ioctl";
  Alcotest.(check int) "no hits recorded while disarmed" 0
    (Fault.hits "os.ioctl")

let test_with_retries_accounting () =
  with_plane (fun () ->
      let tel = Telemetry.create () in
      (* One transient: absorbed on the second attempt. *)
      Fault.install ~telemetry:tel
        [ { Fault.site = "os.ioctl"; nth = 1; kind = Fault.Transient } ];
      let backoffs = ref [] in
      Fault.with_retries
        ~backoff:(fun a -> backoffs := a :: !backoffs)
        (fun () -> Fault.point "os.ioctl");
      Alcotest.(check (list int)) "backoff called for attempt 1" [ 1 ] !backoffs;
      Alcotest.(check int) "retried counted" 1 (Telemetry.counter tel "fault.retried");
      Alcotest.(check int) "survival counted" 1
        (Telemetry.counter tel "fault.survived.os.ioctl");
      (* Permanent: propagates immediately, no retry.  Fresh sink —
         telemetry deliberately accumulates across installs. *)
      let tel = Telemetry.create () in
      Fault.install ~telemetry:tel
        [ { Fault.site = "os.ioctl"; nth = 1; kind = Fault.Permanent } ];
      (match
         Fault.with_retries ~backoff:no_backoff (fun () ->
             Fault.point "os.ioctl")
       with
      | () -> Alcotest.fail "permanent fault was swallowed"
      | exception Fault.Injected { kind = Fault.Permanent; _ } -> ());
      Alcotest.(check int) "permanent not retried" 0
        (Telemetry.counter tel "fault.retried");
      (* Transient on every attempt: retries exhaust and re-raise. *)
      let tel = Telemetry.create () in
      Fault.install ~telemetry:tel
        (List.init 3 (fun i ->
             { Fault.site = "os.ioctl"; nth = i + 1; kind = Fault.Transient }));
      (match
         Fault.with_retries ~backoff:no_backoff (fun () ->
             Fault.point "os.ioctl")
       with
      | () -> Alcotest.fail "exhausted retries reported success"
      | exception Fault.Injected { kind = Fault.Transient; _ } -> ());
      Alcotest.(check int) "two retries before giving up" 2
        (Telemetry.counter tel "fault.retried");
      Alcotest.(check int) "prefix sum sees per-site counters" 2
        (Telemetry.sum_prefix tel "fault.retried."))

let test_observer_fires_pre_mutation () =
  with_plane (fun () ->
      let seen = ref [] in
      Fault.install
        [ { Fault.site = "tpm.quote"; nth = 1; kind = Fault.Transient } ];
      Fault.on_inject (fun ~site kind -> seen := (site, kind) :: !seen);
      (try Fault.point "tpm.quote" with Fault.Injected _ -> ());
      Alcotest.(check bool)
        "observer saw the injection" true
        (!seen = [ ("tpm.quote", Fault.Transient) ]))

let test_ioctl_retry_end_to_end () =
  (* A transient ioctl fault during enclave build is absorbed by the
     kernel module's retry loop: creation and a subsequent ECALL both
     succeed, and the telemetry shows the recovery. *)
  with_plane (fun () ->
      let p = Platform.create ~seed:7100L () in
      let tel = Telemetry.create () in
      Fault.install ~telemetry:tel
        [ { Fault.site = "os.ioctl"; nth = 1; kind = Fault.Transient } ];
      let handle =
        Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
          ~rng:p.Platform.rng ~signer:p.Platform.signer
          ~config:(Urts.default_config Sgx_types.GU)
          ~ecalls:[ (1, fun _tenv input -> input) ]
          ~ocalls:[]
      in
      let reply =
        Urts.ecall handle ~id:1 ~data:(Bytes.of_string "ok") ~direction:Edge.In_out ()
      in
      Alcotest.(check string) "ECALL result intact" "ok" (Bytes.to_string reply);
      Alcotest.(check int) "fault fired" 1 (Telemetry.counter tel "fault.injected");
      Alcotest.(check int) "fault survived" 1
        (Telemetry.counter tel "fault.survived.os.ioctl");
      Urts.destroy handle;
      Alcotest.(check int) "monitor clean afterwards" 0
        (List.length (Invariants.check p.Platform.monitor)))

let test_invariants_clean_and_detect () =
  let p = Platform.create ~seed:7200L () in
  let m = p.Platform.monitor in
  Alcotest.(check bool) "fresh platform passes" true (Invariants.ok m);
  Alcotest.(check string) "summary reads ok" "ok"
    (Invariants.summary (Invariants.check m));
  (* R-1: map a reserved frame into the normal VM's nested table. *)
  let res_base, _ = Monitor.reserved_range m in
  Page_table.map (Monitor.normal_npt m) ~vpn:0xbeef ~frame:res_base
    ~perms:Page_table.rw;
  let findings = Invariants.check m in
  Alcotest.(check bool)
    "R-1 corruption flagged" true
    (List.exists (fun f -> f.Invariants.invariant = "R-1") findings);
  Page_table.unmap (Monitor.normal_npt m) ~vpn:0xbeef;
  (* R-3: grant a device DMA into the reserved region. *)
  Hw.Iommu.attach p.Platform.iommu ~device:"rogue-nic";
  Hw.Iommu.grant p.Platform.iommu ~device:"rogue-nic" ~first_frame:res_base
    ~nframes:1;
  let findings = Invariants.check m in
  Alcotest.(check bool)
    "R-3 corruption flagged" true
    (List.exists (fun f -> f.Invariants.invariant = "R-3") findings);
  Hw.Iommu.revoke p.Platform.iommu ~device:"rogue-nic" ~first_frame:res_base
    ~nframes:1;
  Alcotest.(check bool) "clean again after repair" true (Invariants.ok m)

let test_backoff_cost_shape () =
  let m = Cost_model.default in
  let c1 = World_switch.retry_backoff_cost m ~attempt:1 in
  let c2 = World_switch.retry_backoff_cost m ~attempt:2 in
  let c9 = World_switch.retry_backoff_cost m ~attempt:9 in
  Alcotest.(check bool) "exponential" true (c2 = 2 * c1);
  Alcotest.(check int) "capped at 2^6" (World_switch.retry_backoff_cost m ~attempt:6) c9

let suite =
  [
    Alcotest.test_case "plan determinism" `Quick test_plan_determinism;
    Alcotest.test_case "explicit schedule" `Quick test_explicit_schedule;
    Alcotest.test_case "disarmed no-op" `Quick test_disarmed_noop;
    Alcotest.test_case "retry accounting" `Quick test_with_retries_accounting;
    Alcotest.test_case "observer pre-mutation" `Quick
      test_observer_fires_pre_mutation;
    Alcotest.test_case "ioctl retry end-to-end" `Quick
      test_ioctl_retry_end_to_end;
    Alcotest.test_case "invariant checker" `Quick
      test_invariants_clean_and_detect;
    Alcotest.test_case "retry backoff cost" `Quick test_backoff_cost_shape;
  ]
