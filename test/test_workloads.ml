(* Workload correctness: the kernels really compute, the parsers really
   parse, the B-tree keeps its invariants, YCSB draws a sane zipfian. *)

open Hyperenclave
module W = Hyperenclave.Workloads

let native_backend handlers ocalls =
  Backend.native ~clock:(Cycles.create ()) ~cost:Cost_model.default
    ~rng:(Rng.create ~seed:1L) ~handlers ~ocalls

(* --- NBench ------------------------------------------------------------------- *)

let test_nbench_all_kernels () =
  let backend = native_backend (W.Nbench.handlers ()) [] in
  (* Every kernel contains internal assertions (sortedness, balanced
     parens, finite results...); running them is the test. *)
  List.iteri
    (fun index name ->
      let cycles = W.Nbench.run_kernel backend ~index ~iterations:1 in
      Alcotest.(check bool) (name ^ " consumed cycles") true (cycles > 0))
    W.Nbench.kernel_names;
  Alcotest.(check int) "ten kernels" 10 W.Nbench.kernel_count

(* --- YCSB ------------------------------------------------------------------------ *)

let test_ycsb_zipfian () =
  let gen = W.Ycsb.create ~rng:(Rng.create ~seed:2L) ~records:1000 () in
  let counts = Hashtbl.create 256 in
  let samples = 20_000 in
  for _ = 1 to samples do
    let key = W.Ycsb.next_key gen in
    Alcotest.(check bool) "key in range" true (key >= 0 && key < 1000);
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  (* Zipf: the top key should be dramatically hotter than the uniform
     expectation of samples/records = 20. *)
  let hottest = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool)
    (Printf.sprintf "hottest key frequency %d >> uniform 20" hottest)
    true (hottest > 200);
  (* Workload A is a fair read/update mix. *)
  let reads = ref 0 in
  for _ = 1 to samples do
    match W.Ycsb.next_op_a gen with
    | W.Ycsb.Read _ -> incr reads
    | W.Ycsb.Update _ | W.Ycsb.Scan _ -> ()
  done;
  let ratio = float_of_int !reads /. float_of_int samples in
  Alcotest.(check bool)
    (Printf.sprintf "50/50 mix (%.2f)" ratio)
    true
    (ratio > 0.45 && ratio < 0.55)

(* --- B-tree ---------------------------------------------------------------------- *)

let make_btree () =
  let t = W.Btree.create ~addr_base:0x1000 ~record_bytes:64 () in
  for key = 0 to 999 do
    W.Btree.insert t ~key (Bytes.of_string (Printf.sprintf "v%d" key))
  done;
  t

let test_btree_basics () =
  let t = make_btree () in
  Alcotest.(check int) "size" 1000 (W.Btree.size t);
  W.Btree.check_invariants t;
  for key = 0 to 999 do
    match W.Btree.find t ~key with
    | Some v ->
        Alcotest.(check string)
          "stored value" (Printf.sprintf "v%d" key) (Bytes.to_string v)
    | None -> Alcotest.failf "key %d missing" key
  done;
  Alcotest.(check bool) "absent key" true (W.Btree.find t ~key:5000 = None);
  Alcotest.(check bool) "depth grew" true (W.Btree.depth t >= 2);
  Alcotest.(check bool)
    "update" true
    (W.Btree.update t ~key:7 (Bytes.of_string "fresh"));
  Alcotest.(check string)
    "updated value" "fresh"
    (Bytes.to_string (Option.get (W.Btree.find t ~key:7)));
  Alcotest.(check bool)
    "update absent" false
    (W.Btree.update t ~key:123456 (Bytes.of_string "x"));
  Alcotest.(check bool)
    "touch trace non-empty" true
    (List.length (W.Btree.last_touched t) > 0)

let btree_qcheck =
  let open QCheck in
  Test.make ~name:"btree holds every inserted key and stays valid" ~count:50
    (list_of_size (Gen.int_bound 400) (int_bound 10_000))
    (fun keys ->
      let t = W.Btree.create ~addr_base:0x1000 ~record_bytes:64 () in
      List.iter
        (fun key -> W.Btree.insert t ~key (Bytes.of_string (string_of_int key)))
        keys;
      W.Btree.check_invariants t;
      List.for_all
        (fun key ->
          match W.Btree.find t ~key with
          | Some v -> Bytes.to_string v = string_of_int key
          | None -> false)
        keys
      && W.Btree.size t = List.length (List.sort_uniq compare keys))

let test_kvdb_engine () =
  let e = W.Kvdb.Engine.create () in
  let exec s =
    match W.Kvdb.Engine.exec e s with
    | Result.Ok v -> v
    | Result.Error m -> Alcotest.failf "SQL error on %S: %s" s m
  in
  Alcotest.(check string) "insert" "ok" (exec "INSERT INTO kv VALUES (1, 'one')");
  Alcotest.(check string) "select" "one" (exec "SELECT v FROM kv WHERE k = 1");
  Alcotest.(check string) "update" "ok" (exec "UPDATE kv SET v = 'uno' WHERE k = 1");
  Alcotest.(check string) "select updated" "uno" (exec "SELECT v FROM kv WHERE k = 1");
  (match W.Kvdb.Engine.exec e "SELECT v FROM kv WHERE k = 999" with
  | Result.Error "not found" -> ()
  | Result.Error other -> Alcotest.failf "unexpected error %s" other
  | Result.Ok _ -> Alcotest.fail "missing key should fail");
  (match W.Kvdb.Engine.exec e "DROP TABLE kv" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "unsupported SQL should fail")

let test_kvdb_workload () =
  let backend = native_backend (W.Kvdb.handlers ()) [] in
  let load_cycles = W.Kvdb.load backend ~records:500 in
  Alcotest.(check bool) "load charged" true (load_cycles > 0);
  let run_cycles = W.Kvdb.run_ops backend ~records:500 ~ops:200 in
  Alcotest.(check bool) "ops charged" true (run_cycles > 0);
  Alcotest.(check bool)
    "throughput sane" true
    (W.Kvdb.throughput_kops ~cycles:run_cycles ~ops:200 > 0.0)

(* --- HTTP ------------------------------------------------------------------------- *)

let test_http_parser () =
  (match W.Httpd.parse_request "GET /index.html HTTP/1.1\nhost: x\n" with
  | Result.Ok r ->
      Alcotest.(check string) "method" "GET" r.W.Httpd.meth;
      Alcotest.(check string) "path" "/index.html" r.W.Httpd.path;
      Alcotest.(check (list (pair string string)))
        "headers"
        [ ("host", "x") ]
        r.W.Httpd.headers
  | Result.Error e -> Alcotest.fail e);
  (match W.Httpd.parse_request "BOGUS" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "malformed request accepted");
  match W.Httpd.parse_request "GET /x SPDY/9\n" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "bad version accepted"

let test_http_serving () =
  let backend =
    native_backend
      (W.Httpd.handlers ~pages:[ ("/a.html", 10_000) ])
      (W.Httpd.ocalls ())
  in
  let cycles = W.Httpd.serve backend ~path:"/a.html" in
  Alcotest.(check bool) "request charged" true (cycles > 0);
  (* 404 and parse errors surface as failures. *)
  match W.Httpd.serve backend ~path:"/missing.html" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "404 should raise"

(* --- RESP -------------------------------------------------------------------------- *)

let test_resp_parser () =
  (match W.Resp_kv.parse_resp "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nvv\r\n" with
  | Result.Ok parts ->
      Alcotest.(check (list string)) "parts" [ "SET"; "k"; "vv" ] parts
  | Result.Error e -> Alcotest.fail e);
  let pipeline =
    Bytes.to_string
      (Bytes.cat
         (W.Resp_kv.encode_command [ "GET"; "a" ])
         (W.Resp_kv.encode_command [ "GET"; "b" ]))
  in
  (match W.Resp_kv.parse_pipeline pipeline with
  | Result.Ok [ [ "GET"; "a" ]; [ "GET"; "b" ] ] -> ()
  | Result.Ok other ->
      Alcotest.failf "unexpected pipeline: %d commands" (List.length other)
  | Result.Error e -> Alcotest.fail e);
  (match W.Resp_kv.parse_resp "*2\r\n$3\r\nGET\r\n$100\r\nshort\r\n" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "truncated bulk accepted");
  match W.Resp_kv.parse_resp "+inline\r\n" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "non-array accepted"

let test_resp_server () =
  let backend = native_backend (W.Resp_kv.handlers ()) (W.Resp_kv.ocalls ()) in
  W.Resp_kv.load backend ~records:50;
  let cycles = W.Resp_kv.op backend (W.Ycsb.Read 7) in
  Alcotest.(check bool) "get charged" true (cycles > 0);
  let s = W.Resp_kv.service_time backend ~records:50 ~samples:100 in
  Alcotest.(check bool) "service time positive" true (s > 0.0);
  let curve =
    W.Resp_kv.latency_curve ~service_cycles:s ~offered_kops:[ 0.001; 1e9 ]
  in
  (match curve with
  | [ (_, Some low_latency); (_, None) ] ->
      Alcotest.(check bool)
        "unloaded latency ~ service time" true
        (low_latency > 0.0)
  | _ -> Alcotest.fail "curve shape");
  ()

(* --- virtualization-overhead workloads ----------------------------------------------- *)

let test_lmbench_small_overhead () =
  let p = Platform.create ~seed:6000L () in
  let results = W.Lmbench.run p ~iterations:10 () in
  Alcotest.(check int) "six rows" 6 (List.length results);
  List.iter
    (fun (r : W.Lmbench.result) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s overhead %.1f%% < 10%%" r.W.Lmbench.name
           r.W.Lmbench.overhead_pct)
        true
        (r.W.Lmbench.overhead_pct < 10.0 && r.W.Lmbench.overhead_pct > -5.0))
    results

let test_spec_small_overhead () =
  let p = Platform.create ~seed:6001L () in
  let results = W.Spec_cpu.run p () in
  Alcotest.(check int) "nine kernels" 9 (List.length results);
  List.iter
    (fun (r : W.Spec_cpu.result) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s overhead %.2f%% < 3%%" r.W.Spec_cpu.name
           r.W.Spec_cpu.overhead_pct)
        true
        (r.W.Spec_cpu.overhead_pct < 3.0))
    results

let test_kernel_build () =
  let p = Platform.create ~seed:6002L () in
  let r = W.Kernel_build.run p ~files:8 () in
  Alcotest.(check bool) "built" true (r.W.Kernel_build.native_cycles > 0);
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.2f%% < 3%%" r.W.Kernel_build.overhead_pct)
    true
    (r.W.Kernel_build.overhead_pct < 3.0)

let test_memlat_shapes () =
  let sizes = [ 1 lsl 20; 64 lsl 20 ] in
  let series engine pattern =
    W.Memlat.series ~cost:Cost_model.default ~engine ~pattern ~sizes
  in
  let plain = series Hw.Mem_crypto.Plain `Seq in
  let sme = series Hw.Mem_crypto.Sme `Seq in
  let overheads = W.Memlat.overhead_vs ~baseline:plain sme in
  (match overheads with
  | [ (_, small); (_, big) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "in-LLC %.2fx ~ 1, beyond %.2fx > 1.5" small big)
        true
        (small < 1.2 && big > 1.5)
  | _ -> Alcotest.fail "unexpected series length");
  ()

let test_timer_counts () =
  let clock = Cycles.create () in
  let fired = ref 0 in
  let backend =
    Backend.native ~clock ~cost:Cost_model.default ~rng:(Rng.create ~seed:1L)
      ~handlers:
        [
          ( 1,
            fun (env : Backend.env) _ ->
              let timer = W.Timer.create ~period:100_000 env in
              for _ = 1 to 10 do
                env.Backend.compute 25_000;
                W.Timer.check timer env
              done;
              fired := W.Timer.fired timer;
              Bytes.empty );
        ]
      ~ocalls:[]
  in
  ignore (backend.Backend.call ~id:1 ~direction:Edge.In ());
  (* 250k cycles of work at one tick per 100k cycles, where servicing a
     tick itself costs ~8.7k cycles: two to four ticks. *)
  Alcotest.(check bool)
    (Printf.sprintf "ticks proportional to elapsed time (%d)" !fired)
    true
    (!fired >= 2 && !fired <= 4)

let test_kvdb_misuse () =
  let backend = native_backend (W.Kvdb.handlers ()) [] in
  (* Running ops before load must fail loudly, not invent a database. *)
  (match W.Kvdb.run_ops backend ~records:10 ~ops:1 with
  | _ -> Alcotest.fail "run before load accepted"
  | exception Invalid_argument _ -> ());
  ignore (W.Kvdb.load backend ~records:10);
  ignore (W.Kvdb.run_ops backend ~records:10 ~ops:5)

let test_httpd_method_and_errors () =
  let backend =
    native_backend (W.Httpd.handlers ~pages:[ ("/i.html", 100) ]) (W.Httpd.ocalls ())
  in
  (* non-GET and 404 come back as HTTP errors through the same path *)
  let raw_call data =
    Bytes.to_string
      (backend.Backend.call ~id:W.Httpd.ecall_request ~data ~direction:Edge.In_out ())
  in
  Alcotest.(check bool)
    "405 for POST" true
    (String.length (raw_call (Bytes.of_string "POST /i.html HTTP/1.1\n")) >= 12
    && String.sub (raw_call (Bytes.of_string "POST /i.html HTTP/1.1\n")) 9 3 = "405");
  Alcotest.(check string)
    "400 for garbage" "400"
    (String.sub (raw_call (Bytes.of_string "NOT-HTTP")) 9 3)

let test_resp_commands () =
  let backend = native_backend (W.Resp_kv.handlers ()) (W.Resp_kv.ocalls ()) in
  let call parts =
    Bytes.to_string
      (backend.Backend.call ~id:W.Resp_kv.ecall_command
         ~data:(W.Resp_kv.encode_command parts) ~direction:Edge.In_out ())
  in
  Alcotest.(check string) "set" "+OK" (call [ "SET"; "k"; "v" ]);
  Alcotest.(check string) "dbsize" "+1" (call [ "DBSIZE" ]);
  Alcotest.(check bool)
    "get returns bulk" true
    (String.length (call [ "GET"; "k" ]) > 0 && (call [ "GET"; "k" ]).[0] = '$');
  Alcotest.(check string) "missing key" "$-1\n" (call [ "GET"; "absent" ]);
  Alcotest.(check bool)
    "unknown command errors" true
    (String.length (call [ "FLUSHALL" ]) > 0 && (call [ "FLUSHALL" ]).[0] = '-')

let test_spec_kernel_names () =
  Alcotest.(check int) "nine names" 9 (List.length W.Spec_cpu.kernel_names);
  Alcotest.(check bool)
    "SPEC ids present" true
    (List.for_all
       (fun n -> String.length n > 4 && n.[3] = '.')
       W.Spec_cpu.kernel_names)

(* --- PR 9 additions: parser bounds, YCSB B/C mixes, range scans ---------- *)

let test_resp_parser_bounds () =
  let expect_error label raw =
    match W.Resp_kv.parse_resp raw with
    | Result.Error _ -> ()
    | Result.Ok _ -> Alcotest.fail (label ^ ": accepted malformed input")
  in
  (* Every one of these must come back as a typed parse error — never an
     exception out of the dispatch loop (a malicious tenant reaches this
     parser through the attested plane). *)
  expect_error "negative bulk length" "*1\r\n$-5\r\nhello\r\n";
  expect_error "truncated bulk" "*1\r\n$5\r\nab\r\n";
  expect_error "over-declared length" "*2\r\n$3\r\nfoo\r\n$100\r\nbar\r\n";
  expect_error "missing CRLF terminator" "*1\r\n$3\r\nabcXY";
  expect_error "huge declared length (no overflow)"
    (Printf.sprintf "*1\r\n$%d\r\nx\r\n" max_int);
  expect_error "truncated header" "*2\r\n$3\r\nfoo";
  (* CRLF verification: payload of the right length but the terminator
     overwritten. *)
  expect_error "corrupt terminator" "*1\r\n$3\r\nabc\r,";
  (* And the happy path still parses. *)
  match W.Resp_kv.parse_resp "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n" with
  | Result.Ok [ "GET"; "k" ] -> ()
  | Result.Ok _ | Result.Error _ -> Alcotest.fail "well-formed command rejected"

let test_ycsb_mixes () =
  let gen = W.Ycsb.create ~rng:(Rng.create ~seed:31L) ~records:1000 () in
  let samples = 10_000 in
  let reads = ref 0 in
  for _ = 1 to samples do
    match W.Ycsb.next_op_b gen with
    | W.Ycsb.Read _ -> incr reads
    | W.Ycsb.Update _ | W.Ycsb.Scan _ -> ()
  done;
  let ratio = float_of_int !reads /. float_of_int samples in
  Alcotest.(check bool)
    (Printf.sprintf "B is 95/5 (%.3f)" ratio)
    true
    (ratio > 0.93 && ratio < 0.97);
  for _ = 1 to 1000 do
    (match W.Ycsb.next_op_c gen with
    | W.Ycsb.Read _ -> ()
    | W.Ycsb.Update _ | W.Ycsb.Scan _ -> Alcotest.fail "C must be read-only");
    match W.Ycsb.next_scan gen ~max_len:8 () with
    | W.Ycsb.Scan (key, len) ->
        Alcotest.(check bool) "scan anchor in range" true (key >= 0 && key < 1000);
        Alcotest.(check bool) "scan length in [1,8]" true (len >= 1 && len <= 8)
    | W.Ycsb.Read _ | W.Ycsb.Update _ -> Alcotest.fail "next_scan must scan"
  done

let test_btree_scan () =
  let t = W.Btree.create ~addr_base:0x1000 ~record_bytes:64 () in
  for key = 0 to 199 do
    W.Btree.insert t ~key (Bytes.of_string (Printf.sprintf "v%03d" key))
  done;
  W.Btree.check_invariants t;
  let got = W.Btree.scan t ~lo:17 ~count:5 in
  Alcotest.(check (list int)) "five keys from 17" [ 17; 18; 19; 20; 21 ]
    (List.map fst got);
  Alcotest.(check string) "values ride along" "v019"
    (Bytes.to_string (List.assoc 19 got));
  Alcotest.(check bool) "scan touches nodes for the memory simulator" true
    (List.length (W.Btree.last_touched t) > 0);
  Alcotest.(check (list int)) "scan past the end is empty" []
    (List.map fst (W.Btree.scan t ~lo:500 ~count:4));
  Alcotest.(check int) "short scan at the tail" 2
    (List.length (W.Btree.scan t ~lo:198 ~count:10))

let test_kvdb_between () =
  let e = W.Kvdb.Engine.create () in
  for key = 0 to 49 do
    match
      W.Kvdb.Engine.exec e
        (Printf.sprintf "INSERT INTO kv VALUES (%d, 'r%d')" key key)
    with
    | Result.Ok _ -> ()
    | Result.Error m -> Alcotest.fail m
  done;
  (match W.Kvdb.Engine.exec e "SELECT v FROM kv WHERE k BETWEEN 10 AND 14" with
  | Result.Ok reply -> Alcotest.(check string) "inclusive range" "5 rows" reply
  | Result.Error m -> Alcotest.fail m);
  (match W.Kvdb.Engine.exec e "SELECT v FROM kv WHERE k BETWEEN 100 AND 200" with
  | Result.Ok reply -> Alcotest.(check string) "empty range" "0 rows" reply
  | Result.Error m -> Alcotest.fail m);
  match W.Kvdb.Engine.exec e "SELECT v FROM kv WHERE k BETWEEN 9 AND 2" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "inverted range must be a typed error"

let suite =
  [
    QCheck_alcotest.to_alcotest btree_qcheck;
    Alcotest.test_case "resp parser bounds" `Quick test_resp_parser_bounds;
    Alcotest.test_case "ycsb B/C mixes + scans" `Quick test_ycsb_mixes;
    Alcotest.test_case "btree range scan" `Quick test_btree_scan;
    Alcotest.test_case "kvdb BETWEEN scan" `Quick test_kvdb_between;
    Alcotest.test_case "timer counts" `Quick test_timer_counts;
    Alcotest.test_case "kvdb misuse" `Quick test_kvdb_misuse;
    Alcotest.test_case "httpd errors" `Quick test_httpd_method_and_errors;
    Alcotest.test_case "resp commands" `Quick test_resp_commands;
    Alcotest.test_case "spec kernel names" `Quick test_spec_kernel_names;
    Alcotest.test_case "nbench kernels" `Quick test_nbench_all_kernels;
    Alcotest.test_case "ycsb zipfian" `Quick test_ycsb_zipfian;
    Alcotest.test_case "btree basics" `Quick test_btree_basics;
    Alcotest.test_case "kvdb engine SQL" `Quick test_kvdb_engine;
    Alcotest.test_case "kvdb workload" `Quick test_kvdb_workload;
    Alcotest.test_case "http parser" `Quick test_http_parser;
    Alcotest.test_case "http serving" `Quick test_http_serving;
    Alcotest.test_case "resp parser" `Quick test_resp_parser;
    Alcotest.test_case "resp server" `Quick test_resp_server;
    Alcotest.test_case "lmbench overhead" `Slow test_lmbench_small_overhead;
    Alcotest.test_case "spec overhead" `Slow test_spec_small_overhead;
    Alcotest.test_case "kernel build" `Slow test_kernel_build;
    Alcotest.test_case "memlat shapes" `Slow test_memlat_shapes;
  ]
