(* The attested serving plane: SIGMA-style handshake bound to the
   attestation chain, AEAD request channels, typed admission control,
   per-tenant quotas, EDMM-backed session state, and graceful
   degradation under injected faults. *)

open Hyperenclave

let upper input = Bytes.of_string (String.uppercase_ascii (Bytes.to_string input))

let echo_handlers =
  [
    (1, fun _env input -> input);
    (2, fun _env input -> upper input);
  ]

let golden_of (p : Platform.t) =
  Verifier.golden_of_boot_log
    ~ek_public:(Tpm.ek_public p.Platform.tpm)
    (Monitor.boot_log p.Platform.monitor)

let policy_pinning identity =
  { Verifier.expected_mrenclave = Some identity; expected_mrsigner = None; allow_debug = false }

let tenant_config ?(kind = Backend.Hyperenclave Sgx_types.GU) () =
  { (Backend.config kind) with Backend.handlers = echo_handlers }

(* One plane with one enclave tenant, plus a client already holding the
   golden values and the tenant pin. *)
let build ?(seed = 7000L) ?(config = Serve.default_config)
    ?(kind = Backend.Hyperenclave Sgx_types.GU) () =
  let p = Platform.create ~seed () in
  let plane = Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p config in
  let backend = Serve.add_tenant plane ~name:"acme" (tenant_config ~kind ()) in
  let identity =
    match backend.Backend.identity with
    | Some id -> id
    | None -> Bytes.empty
  in
  let quoter_identity =
    match kind with
    | Backend.Sgx -> Serve.quoting_identity plane
    | _ -> identity
  in
  let client =
    Serve.Client.create
      ~rng:(Rng.create ~seed:(Int64.add seed 1L))
      ~golden:(golden_of p)
      ~policy:(policy_pinning quoter_identity)
      ~expected_tenant:identity ()
  in
  (p, plane, backend, client)

let establish plane client =
  match Serve.handshake plane ~tenant:"acme" (Serve.Client.hello client) with
  | Error r -> Alcotest.failf "handshake rejected: %a" Serve.pp_reject r
  | Ok accept -> (
      match Serve.Client.establish client accept with
      | Error r -> Alcotest.failf "establish failed: %a" Serve.pp_reject r
      | Ok () -> ())

let expect_reject expected = function
  | Ok _ -> Alcotest.failf "expected %s rejection" expected
  | Error r -> Alcotest.(check string) "reject kind" expected (Serve.reject_name r)

(* ------------------------------------------------------------------ *)
(* Handshake + end-to-end serving                                      *)

let test_roundtrip_modes () =
  List.iter
    (fun mode ->
      let _p, plane, _backend, client =
        build ~kind:(Backend.Hyperenclave mode) ()
      in
      establish plane client;
      let data = Bytes.of_string "hello enclave" in
      (match Serve.Client.roundtrip plane client [ (1, data); (2, data) ] with
      | [ Ok r1; Ok r2 ] ->
          Alcotest.(check string) "echo" "hello enclave" (Bytes.to_string r1);
          Alcotest.(check string) "upper" "HELLO ENCLAVE" (Bytes.to_string r2)
      | results ->
          List.iter
            (function
              | Error r -> Alcotest.failf "roundtrip failed: %a" Serve.pp_reject r
              | Ok _ -> ())
            results;
          Alcotest.failf "expected 2 replies, got %d" (List.length results));
      Serve.destroy plane)
    Sgx_types.all_modes

let test_sgx_tenant_via_quoting_enclave () =
  (* An SGX-model tenant cannot self-quote; the plane's quoting enclave
     vouches for the identity carried in the transcript, which the
     client pins. *)
  let _p, plane, backend, client = build ~seed:7002L ~kind:Backend.Sgx () in
  establish plane client;
  (match backend.Backend.urts with
  | Some _ -> Alcotest.fail "SGX-model backend should have no SDK handle"
  | None -> ());
  (match Serve.Client.roundtrip plane client [ (2, Bytes.of_string "sgx") ] with
  | [ Ok r ] -> Alcotest.(check string) "served" "SGX" (Bytes.to_string r)
  | _ -> Alcotest.fail "SGX tenant roundtrip failed");
  Serve.destroy plane

let test_sgx_wrong_tenant_pin_rejected () =
  let p = Platform.create ~seed:7003L () in
  let plane = Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p Serve.default_config in
  let backend = Serve.add_tenant plane ~name:"acme" (tenant_config ~kind:Backend.Sgx ()) in
  ignore (backend : Backend.t);
  let client =
    Serve.Client.create ~rng:(Rng.create ~seed:1L) ~golden:(golden_of p)
      ~policy:(policy_pinning (Serve.quoting_identity plane))
      ~expected_tenant:(Bytes.make 32 'z') ()
  in
  (match Serve.handshake plane ~tenant:"acme" (Serve.Client.hello client) with
  | Error r -> Alcotest.failf "handshake rejected: %a" Serve.pp_reject r
  | Ok accept ->
      expect_reject "handshake-failed" (Serve.Client.establish client accept));
  Serve.destroy plane

let test_native_tenant_refused () =
  let p = Platform.create ~seed:7004L () in
  let plane = Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p Serve.default_config in
  ignore (Serve.add_tenant plane ~name:"bare" (tenant_config ~kind:Backend.Native ()));
  let client =
    Serve.Client.create ~rng:(Rng.create ~seed:2L) ~golden:(golden_of p)
      ~policy:{ Verifier.expected_mrenclave = None; expected_mrsigner = None; allow_debug = false }
      ()
  in
  expect_reject "unsupported"
    (Serve.handshake plane ~tenant:"bare" (Serve.Client.hello client));
  Serve.destroy plane

let test_unknown_tenant () =
  let _p, plane, _backend, client = build ~seed:7005L () in
  expect_reject "unknown-tenant"
    (Serve.handshake plane ~tenant:"nobody" (Serve.Client.hello client));
  Serve.destroy plane

let test_replayed_nonce () =
  let _p, plane, _backend, client = build ~seed:7006L () in
  let hello = Serve.Client.hello client in
  (match Serve.handshake plane ~tenant:"acme" hello with
  | Error r -> Alcotest.failf "first handshake rejected: %a" Serve.pp_reject r
  | Ok _ -> ());
  expect_reject "replayed-nonce" (Serve.handshake plane ~tenant:"acme" hello);
  Serve.destroy plane

let test_spliced_accept_fails_binding () =
  (* A quote lifted from one exchange must not authenticate another:
     swap the server share after the fact and the transcript binding
     breaks. *)
  let _p, plane, _backend, client = build ~seed:7007L () in
  (match Serve.handshake plane ~tenant:"acme" (Serve.Client.hello client) with
  | Error r -> Alcotest.failf "handshake rejected: %a" Serve.pp_reject r
  | Ok accept ->
      let _, other_share = Kx.generate (Rng.create ~seed:99L) in
      expect_reject "channel-binding"
        (Serve.Client.establish client { accept with Serve.server_kx = other_share }));
  Serve.destroy plane

let test_garbage_quote_wire () =
  let _p, plane, _backend, client = build ~seed:7008L () in
  (match Serve.handshake plane ~tenant:"acme" (Serve.Client.hello client) with
  | Error r -> Alcotest.failf "handshake rejected: %a" Serve.pp_reject r
  | Ok accept ->
      expect_reject "bad-wire"
        (Serve.Client.establish client
           { accept with Serve.quote_wire = Bytes.of_string "not a quote" }));
  Serve.destroy plane

(* ------------------------------------------------------------------ *)
(* Channel security + admission control                                *)

let test_tampered_envelope_rejected () =
  let _p, plane, _backend, client = build ~seed:7010L () in
  establish plane client;
  let req = Serve.Client.request client ~ecall:1 (Bytes.of_string "payload") in
  let ct = Bytes.copy req.Serve.envelope.Crypto.Authenc.ciphertext in
  Bytes.set ct 0 (Char.chr (Char.code (Bytes.get ct 0) lxor 1));
  let tampered =
    { req with Serve.envelope = { req.Serve.envelope with Crypto.Authenc.ciphertext = ct } }
  in
  expect_reject "bad-auth" (Serve.submit plane tampered);
  Serve.destroy plane

let test_respliced_header_rejected () =
  (* Redirecting a valid envelope at a different ECALL id: the AAD binds
     the id, so the plane refuses. *)
  let _p, plane, _backend, client = build ~seed:7011L () in
  establish plane client;
  let req = Serve.Client.request client ~ecall:1 (Bytes.of_string "payload") in
  expect_reject "bad-auth" (Serve.submit plane { req with Serve.ecall_id = 2 });
  Serve.destroy plane

let test_replayed_request_rejected () =
  let _p, plane, _backend, client = build ~seed:7012L () in
  establish plane client;
  let req = Serve.Client.request client ~ecall:1 (Bytes.of_string "once") in
  (match Serve.submit plane req with
  | Ok () -> ()
  | Error r -> Alcotest.failf "first submit rejected: %a" Serve.pp_reject r);
  expect_reject "bad-sequence" (Serve.submit plane req);
  Serve.destroy plane

let test_unknown_session () =
  let _p, plane, _backend, client = build ~seed:7013L () in
  establish plane client;
  let req = Serve.Client.request client ~ecall:1 Bytes.empty in
  expect_reject "unknown-session"
    (Serve.submit plane { req with Serve.session_id = 4242 });
  Serve.destroy plane

let test_backpressure () =
  let config = { Serve.default_config with Serve.max_queue = 2 } in
  let _p, plane, _backend, client = build ~seed:7014L ~config () in
  establish plane client;
  let submit () =
    Serve.submit plane (Serve.Client.request client ~ecall:1 (Bytes.of_string "x"))
  in
  (match (submit (), submit ()) with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "first two submits should be admitted");
  expect_reject "backpressure" (submit ());
  (* Flushing drains the queue; admission resumes. *)
  ignore (Serve.flush plane);
  (match submit () with
  | Ok () -> ()
  | Error r -> Alcotest.failf "post-flush submit rejected: %a" Serve.pp_reject r);
  ignore (Serve.flush plane);
  Serve.destroy plane

let test_quota_exhaustion_and_grant () =
  (* The arena's switchless ring dispatch charges only a few hundred
     cycles per single-request flush (post fence + slot dispatch + page
     walks) — a quota below that still admits the first request and is
     exhausted by it. *)
  let config = { Serve.default_config with Serve.cycle_quota = Some 300 } in
  let _p, plane, _backend, client = build ~seed:7015L ~config () in
  establish plane client;
  let roundtrip () =
    Serve.Client.roundtrip plane client [ (1, Bytes.of_string "spend") ]
  in
  (match roundtrip () with
  | [ Ok _ ] -> ()
  | _ -> Alcotest.fail "first roundtrip should succeed under a fresh quota");
  let spent, budget = Serve.quota_state plane ~tenant:"acme" in
  Alcotest.(check bool) "cycles were charged" true (spent > 0);
  Alcotest.(check int) "budget as configured" 300 budget;
  Alcotest.(check bool) "quota exhausted" true (spent >= budget);
  (match roundtrip () with
  | [ Error (Serve.Quota_exhausted { tenant; _ }) ] ->
      Alcotest.(check string) "tenant named" "acme" tenant
  | _ -> Alcotest.fail "expected quota rejection");
  (* A grant re-opens admission. *)
  Serve.grant plane ~tenant:"acme" 10_000_000;
  (match roundtrip () with
  | [ Ok _ ] -> ()
  | _ -> Alcotest.fail "roundtrip after grant should succeed");
  Serve.destroy plane

let test_tenant_isolation () =
  (* Two tenants, one plane: each session only decrypts with its own
     key, and per-tenant accounting stays separate. *)
  let p = Platform.create ~seed:7016L () in
  let plane =
    Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p
      { Serve.default_config with Serve.cycle_quota = Some 100_000_000 }
  in
  let b1 = Serve.add_tenant plane ~name:"acme" (tenant_config ()) in
  let b2 = Serve.add_tenant plane ~name:"globex" (tenant_config ()) in
  let mk backend seed =
    let identity = Option.get backend.Backend.identity in
    Serve.Client.create ~rng:(Rng.create ~seed) ~golden:(golden_of p)
      ~policy:(policy_pinning identity) ~expected_tenant:identity ()
  in
  let c1 = mk b1 3L and c2 = mk b2 4L in
  establish plane c1;
  (match Serve.handshake plane ~tenant:"globex" (Serve.Client.hello c2) with
  | Error r -> Alcotest.failf "globex handshake rejected: %a" Serve.pp_reject r
  | Ok accept -> (
      match Serve.Client.establish c2 accept with
      | Error r -> Alcotest.failf "globex establish failed: %a" Serve.pp_reject r
      | Ok () -> ()));
  (* A request sealed under c2's key aimed at c1's session must bounce —
     and the very same envelope must still serve on its own session. *)
  let stolen = Serve.Client.request c2 ~ecall:2 (Bytes.of_string "two") in
  expect_reject "bad-auth"
    (Serve.submit plane { stolen with Serve.session_id = Serve.Client.session_id c1 });
  (match Serve.submit plane stolen with
  | Ok () -> ()
  | Error r -> Alcotest.failf "rightful session rejected: %a" Serve.pp_reject r);
  (* Both tenants serve side by side in one flush. *)
  (match Serve.submit plane (Serve.Client.request c1 ~ecall:2 (Bytes.of_string "one")) with
  | Ok () -> ()
  | Error r -> Alcotest.failf "c1 submit rejected: %a" Serve.pp_reject r);
  let replies = Serve.flush plane in
  Alcotest.(check int) "both served" 2 (List.length replies);
  let spent1, _ = Serve.quota_state plane ~tenant:"acme" in
  let spent2, _ = Serve.quota_state plane ~tenant:"globex" in
  Alcotest.(check bool) "acme charged" true (spent1 > 0);
  Alcotest.(check bool) "globex charged" true (spent2 > 0);
  Serve.destroy plane

let test_many_requests_ordered () =
  (* A burst across several flushes keeps sequence discipline and reply
     order on a multi-core scheduler. *)
  let config =
    { Serve.default_config with
      Serve.sched = { Sched.default_config with Sched.cores = 4; drop_on_error = true; batch = 4 } }
  in
  let _p, plane, _backend, client = build ~seed:7017L ~config () in
  establish plane client;
  for round = 0 to 2 do
    let reqs =
      List.init 8 (fun i -> (1, Bytes.of_string (Printf.sprintf "r%d-%d" round i)))
    in
    let replies = Serve.Client.roundtrip plane client reqs in
    Alcotest.(check int) "all replied" 8 (List.length replies);
    List.iteri
      (fun i reply ->
        match reply with
        | Ok body ->
            Alcotest.(check string) "in order"
              (Printf.sprintf "r%d-%d" round i)
              (Bytes.to_string body)
        | Error r -> Alcotest.failf "request failed: %a" Serve.pp_reject r)
      replies
  done;
  let stats = Serve.sched_stats plane in
  Alcotest.(check int) "scheduler served all requests" 24 stats.Sched.total_requests;
  Serve.destroy plane

(* ------------------------------------------------------------------ *)
(* EDMM session state                                                  *)

let test_resize_session_edmm () =
  let _p, plane, backend, client = build ~seed:7020L () in
  establish plane client;
  let enclave = Urts.enclave (Option.get backend.Backend.urts) in
  let before = enclave.Enclave.stats.Enclave.dyn_pages in
  (match Serve.resize_session plane ~session:(Serve.Client.session_id client) ~pages:4 with
  | Ok n -> Alcotest.(check int) "pages committed" 4 n
  | Error r -> Alcotest.failf "resize rejected: %a" Serve.pp_reject r);
  Alcotest.(check bool) "EDMM demand-committed pages" true
    (enclave.Enclave.stats.Enclave.dyn_pages > before);
  (* Out-of-stride requests are a caller error. *)
  (try
     ignore (Serve.resize_session plane ~session:(Serve.Client.session_id client)
               ~pages:(Serve.default_config.Serve.state_stride_pages + 1));
     Alcotest.fail "oversized resize accepted"
   with Invalid_argument _ -> ());
  Serve.destroy plane

let test_resize_session_sgx_unsupported () =
  let _p, plane, _backend, client = build ~seed:7021L ~kind:Backend.Sgx () in
  establish plane client;
  (match Serve.resize_session plane ~session:(Serve.Client.session_id client) ~pages:2 with
  | Error (Serve.Unsupported _) -> ()
  | Ok _ -> Alcotest.fail "SGX1 EDMM resize should be refused"
  | Error r -> Alcotest.failf "expected Unsupported, got %a" Serve.pp_reject r);
  Serve.destroy plane

let test_state_ecall_reserved () =
  let p = Platform.create ~seed:7022L () in
  let plane = Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p Serve.default_config in
  (try
     ignore
       (Serve.add_tenant plane ~name:"clash"
          { (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
            Backend.handlers = [ (Serve.state_ecall, fun _ input -> input) ] });
     Alcotest.fail "reserved ECALL collision accepted"
   with Invalid_argument _ -> ());
  Serve.destroy plane

(* ------------------------------------------------------------------ *)
(* Graceful degradation under injected faults                          *)

let test_transient_fault_absorbed () =
  let _p, plane, _backend, client = build ~seed:7030L () in
  establish plane client;
  Fault.install [ { Fault.site = "serve.session"; nth = 1; kind = Fault.Transient } ];
  let replies = Serve.Client.roundtrip plane client [ (1, Bytes.of_string "survive") ] in
  Fault.clear ();
  (match replies with
  | [ Ok body ] -> Alcotest.(check string) "served through retry" "survive" (Bytes.to_string body)
  | [ Error r ] -> Alcotest.failf "transient fault not absorbed: %a" Serve.pp_reject r
  | _ -> Alcotest.fail "expected one reply");
  Serve.destroy plane

let test_permanent_fault_typed () =
  let p, plane, _backend, client = build ~seed:7031L () in
  establish plane client;
  (* Make sure the session works, then break it permanently at the next
     site crossing: the reply must be a typed Session_fault, invariants
     must stay green, and the session must keep working afterwards. *)
  (match Serve.Client.roundtrip plane client [ (1, Bytes.of_string "ok") ] with
  | [ Ok _ ] -> ()
  | _ -> Alcotest.fail "pre-fault roundtrip failed");
  let inv_failures = ref [] in
  Fault.install [ { Fault.site = "serve.session"; nth = 1; kind = Fault.Permanent } ];
  Fault.on_inject (fun ~site:_ _kind ->
      match Invariants.check p.Platform.monitor with
      | [] -> ()
      | findings -> inv_failures := Invariants.summary findings :: !inv_failures);
  let replies = Serve.Client.roundtrip plane client [ (1, Bytes.of_string "doomed") ] in
  Fault.clear ();
  Alcotest.(check (list string)) "invariants green at injection" [] !inv_failures;
  (match replies with
  | [ Error (Serve.Session_fault _) ] -> ()
  | [ Ok _ ] -> Alcotest.fail "permanent fault produced a clean reply"
  | [ Error r ] -> Alcotest.failf "expected session-fault, got %a" Serve.pp_reject r
  | _ -> Alcotest.fail "expected one reply");
  (match Serve.Client.roundtrip plane client [ (1, Bytes.of_string "after") ] with
  | [ Ok body ] -> Alcotest.(check string) "session recovered" "after" (Bytes.to_string body)
  | _ -> Alcotest.fail "session unusable after typed fault");
  Serve.destroy plane

let test_chaos_two_tenants_two_cores () =
  (* Seeded chaos over the serving plane: 2 tenants, 2 cores, faults on
     every site the serving path crosses.  Every request must end in a
     clean reply or a typed rejection — never an escaped exception —
     with monitor invariants green at the moment of every injection. *)
  let seeds = [ 9100; 9200; 9300 ] in
  List.iter
    (fun seed ->
      let p = Platform.create ~seed:(Int64.of_int (0x5E12E000 + seed)) () in
      let plane =
        Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p
          { Serve.default_config with
            Serve.sched = { Sched.default_config with Sched.cores = 2; drop_on_error = true } }
      in
      let b1 = Serve.add_tenant plane ~name:"acme" (tenant_config ()) in
      let b2 =
        Serve.add_tenant plane ~name:"globex"
          (tenant_config ~kind:(Backend.Hyperenclave Sgx_types.HU) ())
      in
      let mk backend seed =
        let identity = Option.get backend.Backend.identity in
        Serve.Client.create ~rng:(Rng.create ~seed) ~golden:(golden_of p)
          ~policy:(policy_pinning identity) ~expected_tenant:identity ()
      in
      let c1 = mk b1 11L and c2 = mk b2 12L in
      establish plane c1;
      (match Serve.handshake plane ~tenant:"globex" (Serve.Client.hello c2) with
      | Ok accept -> (
          match Serve.Client.establish c2 accept with
          | Ok () -> ()
          | Error r -> Alcotest.failf "globex establish: %a" Serve.pp_reject r)
      | Error r -> Alcotest.failf "globex handshake: %a" Serve.pp_reject r);
      let plan =
        Fault.plan_of_seed
          ~sites:
            [ "serve.session"; "sdk.ms_copy_in"; "sdk.ms_copy_out";
              "switch.aex"; "switch.eresume"; "epc.alloc" ]
          ~faults:5 (Int64.of_int seed)
      in
      let plan_str = Fault.plan_to_string plan in
      let inv_failures = ref [] in
      Fault.install ~telemetry:(Monitor.telemetry p.Platform.monitor) plan;
      Fault.on_inject (fun ~site _kind ->
          match Invariants.check p.Platform.monitor with
          | [] -> ()
          | findings ->
              inv_failures := (site, Invariants.summary findings) :: !inv_failures);
      for round = 0 to 3 do
        List.iter
          (fun (client, tag) ->
            let reqs =
              List.init 3 (fun i ->
                  (1, Bytes.of_string (Printf.sprintf "%s-%d-%d" tag round i)))
            in
            match Serve.Client.roundtrip plane client reqs with
            | exception e ->
                Alcotest.failf "escaped exception under plan %s: %s" plan_str
                  (Printexc.to_string e)
            | replies ->
                List.iter
                  (function
                    | Ok _ -> ()
                    | Error r ->
                        (* Typed degradation is the contract; anything
                           typed is acceptable under chaos. *)
                        ignore (Serve.reject_name r))
                  replies)
          [ (c1, "a"); (c2, "g") ]
      done;
      Fault.clear ();
      (match !inv_failures with
      | [] -> ()
      | (site, summary) :: _ ->
          Alcotest.failf "invariants broken at %s under plan %s: %s" site plan_str
            summary);
      (match Invariants.check p.Platform.monitor with
      | [] -> ()
      | findings ->
          Alcotest.failf "invariants broken after chaos run: %s"
            (Invariants.summary findings));
      Serve.destroy plane)
    seeds

(* ------------------------------------------------------------------ *)
(* Session lifecycle: close, churn, bounded replay cache, teardown     *)

let test_close_session () =
  let _p, plane, _backend, client = build ~seed:7050L () in
  establish plane client;
  let sid = Serve.Client.session_id client in
  (* A queued request is dropped with its session: nothing of it may
     survive to the next flush, and its queue slot is released. *)
  (match Serve.submit plane (Serve.Client.request client ~ecall:1 (Bytes.of_string "doomed")) with
  | Ok () -> ()
  | Error r -> Alcotest.failf "submit rejected: %a" Serve.pp_reject r);
  (match Serve.close_session plane ~session:sid with
  | Ok () -> ()
  | Error r -> Alcotest.failf "close rejected: %a" Serve.pp_reject r);
  Alcotest.(check int) "session gone" 0 (Serve.session_count plane);
  Alcotest.(check int) "pending dropped" 0 (List.length (Serve.flush plane));
  expect_reject "unknown-session"
    (Serve.submit plane (Serve.Client.request client ~ecall:1 Bytes.empty));
  expect_reject "unknown-session" (Serve.close_session plane ~session:sid);
  Serve.destroy plane

let test_session_churn_reuses_state_slots () =
  (* PR 6 lifecycle fix: closed sessions recycle their EDMM state slot
     through the tenant free list.  Observable through the enclave's
     dynamic-page count — a reused slot's stride is already committed,
     so churning sessions must not keep growing the heap. *)
  let _p, plane, backend, client = build ~seed:7051L () in
  let enclave = Urts.enclave (Option.get backend.Backend.urts) in
  let reconnect () =
    establish plane client;
    match Serve.resize_session plane ~session:(Serve.Client.session_id client) ~pages:2 with
    | Ok _ -> ()
    | Error r -> Alcotest.failf "resize rejected: %a" Serve.pp_reject r
  in
  reconnect ();
  let after_first = enclave.Enclave.stats.Enclave.dyn_pages in
  for _ = 1 to 8 do
    (match Serve.close_session plane ~session:(Serve.Client.session_id client) with
    | Ok () -> ()
    | Error r -> Alcotest.failf "close rejected: %a" Serve.pp_reject r);
    reconnect ()
  done;
  Alcotest.(check int) "slot reuse: no dynamic-page growth under churn"
    after_first enclave.Enclave.stats.Enclave.dyn_pages;
  Alcotest.(check int) "one live session after churn" 1 (Serve.session_count plane);
  Serve.destroy plane

let test_nonce_cache_bounded () =
  (* The replay cache remembers only the last [nonce_cache] nonces — a
     hard memory bound.  Recent nonces are still rejected; one pushed
     out by newer handshakes is accepted again (the documented trade of
     a bounded cache). *)
  let config = { Serve.default_config with Serve.nonce_cache = 4 } in
  let _p, plane, _backend, client = build ~seed:7052L ~config () in
  let oldest = Serve.Client.hello client in
  (match Serve.handshake plane ~tenant:"acme" oldest with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "handshake rejected: %a" Serve.pp_reject r);
  let newest = ref oldest in
  for _ = 1 to 4 do
    let hello = Serve.Client.hello client in
    newest := hello;
    match Serve.handshake plane ~tenant:"acme" hello with
    | Ok _ -> ()
    | Error r -> Alcotest.failf "handshake rejected: %a" Serve.pp_reject r
  done;
  expect_reject "replayed-nonce" (Serve.handshake plane ~tenant:"acme" !newest);
  (match Serve.handshake plane ~tenant:"acme" oldest with
  | Ok _ -> ()
  | Error r ->
      Alcotest.failf "evicted nonce should re-admit (bounded cache): %a"
        Serve.pp_reject r);
  Serve.destroy plane

let test_destroy_owns_tenant_backends () =
  (* PR 6 teardown fix: the plane created the tenant backends, so
     [destroy] tears them down too — no enclave outlives the plane —
     and destroying twice is a harmless no-op. *)
  let p, plane, _backend, client = build ~seed:7053L () in
  establish plane client;
  Alcotest.(check bool) "tenant enclave live" true
    (Monitor.enclave_count p.Platform.monitor > 0);
  Serve.destroy plane;
  Alcotest.(check int) "no enclave outlives the plane" 0
    (Monitor.enclave_count p.Platform.monitor);
  Alcotest.(check int) "session table cleared" 0 (Serve.session_count plane);
  Serve.destroy plane;
  (match Invariants.check p.Platform.monitor with
  | [] -> ()
  | findings ->
      Alcotest.failf "invariants broken after teardown: %s"
        (Invariants.summary findings))

(* ------------------------------------------------------------------ *)
(* Scheduler statistics must be a read-only snapshot                   *)

let test_sched_stats_read_only () =
  (* Regression: [sched_stats] used to call the mutating [Sched.run],
     silently draining whatever was queued.  A snapshot taken between
     submit and flush must neither serve the queued request nor change
     across repeated calls. *)
  let _p, plane, _backend, client = build ~seed:7054L () in
  establish plane client;
  (match Serve.Client.roundtrip plane client [ (1, Bytes.of_string "warm") ] with
  | [ Ok _ ] -> ()
  | _ -> Alcotest.fail "warm-up roundtrip failed");
  (match Serve.submit plane (Serve.Client.request client ~ecall:1 (Bytes.of_string "queued")) with
  | Ok () -> ()
  | Error r -> Alcotest.failf "submit rejected: %a" Serve.pp_reject r);
  let s1 = Serve.sched_stats plane in
  let s2 = Serve.sched_stats plane in
  Alcotest.(check int) "snapshot is stable across calls"
    s1.Sched.total_requests s2.Sched.total_requests;
  Alcotest.(check int) "snapshot did not serve the queued request" 1
    s1.Sched.total_requests;
  (* The queued request is still there for flush to serve. *)
  (match Serve.flush plane with
  | [ reply ] -> (
      match Serve.Client.read_reply client reply with
      | Ok body -> Alcotest.(check string) "still served" "queued" (Bytes.to_string body)
      | Error r -> Alcotest.failf "reply rejected: %a" Serve.pp_reject r)
  | replies -> Alcotest.failf "expected 1 reply, got %d" (List.length replies));
  let s3 = Serve.sched_stats plane in
  Alcotest.(check int) "flush, not stats, advanced the counter" 2
    s3.Sched.total_requests;
  Serve.destroy plane

(* ------------------------------------------------------------------ *)
(* Reply-channel splice and direction attacks                          *)

let test_reply_splice_rejected () =
  (* Replies are sealed to their session and sequence: a reply lifted
     from tenant A's channel must bounce off client B, a re-numbered
     reply must fail its AAD, and a reply envelope fed back in as a
     request must trip the direction binding — all typed, with monitor
     invariants green throughout. *)
  let p = Platform.create ~seed:7055L () in
  let plane = Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p Serve.default_config in
  let b1 = Serve.add_tenant plane ~name:"acme" (tenant_config ()) in
  let b2 = Serve.add_tenant plane ~name:"globex" (tenant_config ()) in
  let mk backend seed =
    let identity = Option.get backend.Backend.identity in
    Serve.Client.create ~rng:(Rng.create ~seed) ~golden:(golden_of p)
      ~policy:(policy_pinning identity) ~expected_tenant:identity ()
  in
  let c1 = mk b1 21L and c2 = mk b2 22L in
  establish plane c1;
  (match Serve.handshake plane ~tenant:"globex" (Serve.Client.hello c2) with
  | Ok accept -> (
      match Serve.Client.establish c2 accept with
      | Ok () -> ()
      | Error r -> Alcotest.failf "globex establish: %a" Serve.pp_reject r)
  | Error r -> Alcotest.failf "globex handshake: %a" Serve.pp_reject r);
  (match Serve.submit plane (Serve.Client.request c1 ~ecall:1 (Bytes.of_string "mine")) with
  | Ok () -> ()
  | Error r -> Alcotest.failf "submit rejected: %a" Serve.pp_reject r);
  (match Serve.flush plane with
  | [ reply ] ->
      (* Cross-session read: wrong recipient, typed refusal. *)
      expect_reject "unknown-session" (Serve.Client.read_reply c2 reply);
      (* Re-numbered reply: the AAD binds the sequence. *)
      expect_reject "bad-auth"
        (Serve.Client.read_reply c1 { reply with Serve.r_seq = reply.Serve.r_seq + 9 });
      (* Reply-as-request: the direction byte in nonce and AAD domain
         separate the two halves of the channel. *)
      (match reply.Serve.r_result with
      | Ok envelope ->
          expect_reject "bad-auth"
            (Serve.submit plane
               { Serve.session_id = reply.Serve.r_session_id;
                 seq = reply.Serve.r_seq;
                 ecall_id = 1;
                 envelope })
      | Error r -> Alcotest.failf "reply carried a rejection: %a" Serve.pp_reject r);
      (* The rightful recipient still reads it cleanly. *)
      (match Serve.Client.read_reply c1 reply with
      | Ok body -> Alcotest.(check string) "rightful read" "mine" (Bytes.to_string body)
      | Error r -> Alcotest.failf "rightful read rejected: %a" Serve.pp_reject r)
  | replies -> Alcotest.failf "expected 1 reply, got %d" (List.length replies));
  (match Invariants.check p.Platform.monitor with
  | [] -> ()
  | findings ->
      Alcotest.failf "invariants broken after splice attempts: %s"
        (Invariants.summary findings));
  Serve.destroy plane

(* ------------------------------------------------------------------ *)
(* Session resumption tickets                                          *)

let test_ticket_resume () =
  let p, plane, _backend, client = build ~seed:7056L () in
  establish plane client;
  (match Serve.Client.roundtrip plane client [ (1, Bytes.of_string "full") ] with
  | [ Ok _ ] -> ()
  | _ -> Alcotest.fail "pre-ticket roundtrip failed");
  let ticket =
    match Serve.issue_ticket plane ~session:(Serve.Client.session_id client) with
    | Ok tk -> tk
    | Error r -> Alcotest.failf "issue_ticket rejected: %a" Serve.pp_reject r
  in
  let old_sid = Serve.Client.session_id client in
  let resume = Serve.Client.resume_hello client ~ticket in
  (match Serve.resume plane resume with
  | Ok session_id ->
      Alcotest.(check bool) "fresh session id" true (session_id <> old_sid);
      Serve.Client.complete_resume client ~session_id
  | Error r -> Alcotest.failf "resume rejected: %a" Serve.pp_reject r);
  (* The resumed channel serves without any new quote having been cut. *)
  (match Serve.Client.roundtrip plane client [ (2, Bytes.of_string "resumed") ] with
  | [ Ok body ] -> Alcotest.(check string) "served on resumed key" "RESUMED" (Bytes.to_string body)
  | _ -> Alcotest.fail "resumed roundtrip failed");
  let tel = Monitor.telemetry p.Platform.monitor in
  Alcotest.(check int) "resume counted" 1 (Telemetry.counter tel "serve.resume");
  Alcotest.(check int) "only the handshake cut a quote" 1
    (Telemetry.counter tel "serve.handshake");
  Serve.destroy plane

let test_ticket_tampered () =
  let _p, plane, _backend, client = build ~seed:7057L () in
  establish plane client;
  let ticket =
    match Serve.issue_ticket plane ~session:(Serve.Client.session_id client) with
    | Ok tk -> tk
    | Error r -> Alcotest.failf "issue_ticket rejected: %a" Serve.pp_reject r
  in
  let tampered = Bytes.copy ticket in
  let mid = Bytes.length tampered / 2 in
  Bytes.set tampered mid (Char.chr (Char.code (Bytes.get tampered mid) lxor 1));
  expect_reject "bad-ticket"
    (Serve.resume plane (Serve.Client.resume_hello client ~ticket:tampered));
  (* Garbage that never parses is the same typed refusal, not a crash. *)
  let client2_resume = { Serve.r_ticket = Bytes.of_string "junk"; r_nonce = Bytes.make 16 'n' } in
  expect_reject "bad-ticket" (Serve.resume plane client2_resume);
  Serve.destroy plane

let test_ticket_expired () =
  let config = { Serve.default_config with Serve.ticket_ttl = 1_000 } in
  let p, plane, _backend, client = build ~seed:7058L ~config () in
  establish plane client;
  let ticket =
    match Serve.issue_ticket plane ~session:(Serve.Client.session_id client) with
    | Ok tk -> tk
    | Error r -> Alcotest.failf "issue_ticket rejected: %a" Serve.pp_reject r
  in
  Cycles.tick p.Platform.clock 2_000;
  expect_reject "ticket-expired"
    (Serve.resume plane (Serve.Client.resume_hello client ~ticket));
  Serve.destroy plane

let test_ticket_replay_rejected () =
  (* The client's fresh resume nonce is burnt on first use: replaying
     the whole resume record must not mint a second session. *)
  let _p, plane, _backend, client = build ~seed:7059L () in
  establish plane client;
  let ticket =
    match Serve.issue_ticket plane ~session:(Serve.Client.session_id client) with
    | Ok tk -> tk
    | Error r -> Alcotest.failf "issue_ticket rejected: %a" Serve.pp_reject r
  in
  let resume = Serve.Client.resume_hello client ~ticket in
  (match Serve.resume plane resume with
  | Ok session_id -> Serve.Client.complete_resume client ~session_id
  | Error r -> Alcotest.failf "first resume rejected: %a" Serve.pp_reject r);
  expect_reject "replayed-nonce" (Serve.resume plane resume);
  (* The legitimately resumed session is unaffected by the replay. *)
  (match Serve.Client.roundtrip plane client [ (1, Bytes.of_string "still here") ] with
  | [ Ok body ] -> Alcotest.(check string) "unaffected" "still here" (Bytes.to_string body)
  | _ -> Alcotest.fail "resumed session broken by replay attempt");
  Serve.destroy plane

let test_telemetry_counters () =
  let p, plane, _backend, client = build ~seed:7040L () in
  establish plane client;
  (match Serve.Client.roundtrip plane client [ (1, Bytes.of_string "t") ] with
  | [ Ok _ ] -> ()
  | _ -> Alcotest.fail "roundtrip failed");
  expect_reject "unknown-tenant"
    (Serve.handshake plane ~tenant:"ghost" (Serve.Client.hello client));
  let tel = Monitor.telemetry p.Platform.monitor in
  let check_counter name expected =
    Alcotest.(check int) name expected (Telemetry.counter tel name)
  in
  check_counter "serve.handshake" 1;
  check_counter "serve.session_open" 1;
  check_counter "serve.request.admitted" 1;
  check_counter "serve.request.ok" 1;
  check_counter "serve.reject.unknown-tenant" 1;
  (* PR 7 arena watermarks: one staged request, one ring shard used. *)
  check_counter "serve.arena.high_water" 1;
  check_counter "serve.ring.shards_active" 1;
  Alcotest.(check bool) "tenant cycles recorded" true
    (Telemetry.counter tel "serve.tenant.acme.cycles" > 0);
  Serve.destroy plane

(* ------------------------------------------------------------------ *)
(* PR 7: allocation-free arena path                                    *)

(* A second/third client on the same tenant of an existing plane: the
   Hyperenclave-kind backend self-quotes, so the tenant identity is also
   the pinned measurement. *)
let extra_client (p : Platform.t) (backend : Backend.t) ~seed =
  let identity =
    match backend.Backend.identity with Some id -> id | None -> Bytes.empty
  in
  Serve.Client.create ~rng:(Rng.create ~seed) ~golden:(golden_of p)
    ~policy:(policy_pinning identity) ~expected_tenant:identity ()

let sealed_equal (a : Crypto.Authenc.sealed) (b : Crypto.Authenc.sealed) =
  Bytes.equal a.Crypto.Authenc.nonce b.Crypto.Authenc.nonce
  && Bytes.equal a.Crypto.Authenc.ciphertext b.Crypto.Authenc.ciphertext
  && Bytes.equal a.Crypto.Authenc.tag b.Crypto.Authenc.tag
  && Bytes.equal a.Crypto.Authenc.aad b.Crypto.Authenc.aad

(* The arena path must be a pure perf refactor: for identical traffic the
   reply envelopes (nonce, ciphertext, tag, AAD — every byte on the wire)
   must match the reference cons-cell path exactly.  Replies are
   deterministic in the channel key, sequence number, and body — never in
   clocks — so byte identity is checkable across two separately built
   planes seeded alike. *)
let arena_identity_property batches =
  let run arena =
    let config =
      {
        Serve.default_config with
        Serve.arena;
        sched =
          { Sched.default_config with Sched.cores = 4; Sched.batch = 4 };
      }
    in
    let _p, plane, _backend, client = build ~seed:7050L ~config () in
    establish plane client;
    let replies =
      List.concat_map
        (fun batch ->
          List.iter
            (fun (ecall, payload) ->
              match
                Serve.submit plane
                  (Serve.Client.request client ~ecall
                     (Bytes.of_string payload))
              with
              | Ok () -> ()
              | Error r ->
                  Alcotest.failf "submit rejected: %a" Serve.pp_reject r)
            batch;
          Serve.flush plane)
        batches
    in
    Serve.destroy plane;
    replies
  in
  let arena = run true and reference = run false in
  List.length arena = List.length reference
  && List.for_all2
       (fun (a : Serve.reply) (r : Serve.reply) ->
         a.Serve.r_session_id = r.Serve.r_session_id
         && a.Serve.r_seq = r.Serve.r_seq
         &&
         match (a.Serve.r_result, r.Serve.r_result) with
         | Ok sa, Ok sr -> sealed_equal sa sr
         | Error ra, Error rr ->
             Serve.reject_name ra = Serve.reject_name rr
         | _ -> false)
       arena reference

let arena_identity_qcheck =
  QCheck.Test.make ~name:"arena replies byte-identical to reference"
    ~count:20
    QCheck.(
      list_of_size
        Gen.(int_range 1 4)
        (list_of_size
           Gen.(int_range 0 10)
           (pair (oneofl [ 1; 2 ]) (string_of_size Gen.(int_range 0 64)))))
    arena_identity_property

let test_arena_hot_tenant_scales () =
  (* The point of block-rotor sharding: one hot tenant's traffic spreads
     across per-core rings, so adding a second core must cut the
     makespan by >= 1.6x even with a single tenant and session. *)
  let makespan ~cores =
    let config =
      {
        Serve.default_config with
        Serve.max_queue = 256;
        sched =
          { Sched.default_config with Sched.cores; Sched.batch = 16 };
      }
    in
    let _p, plane, _backend, client = build ~seed:7051L ~config () in
    establish plane client;
    for round = 0 to 2 do
      List.iteri
        (fun i () ->
          match
            Serve.submit plane
              (Serve.Client.request client ~ecall:1
                 (Bytes.of_string (Printf.sprintf "hot-%d-%d" round i)))
          with
          | Ok () -> ()
          | Error r -> Alcotest.failf "submit rejected: %a" Serve.pp_reject r)
        (List.init 64 (fun _ -> ()));
      List.iter
        (fun (reply : Serve.reply) ->
          match reply.Serve.r_result with
          | Ok _ -> ()
          | Error r -> Alcotest.failf "reply failed: %a" Serve.pp_reject r)
        (Serve.flush plane)
    done;
    let stats = Serve.sched_stats plane in
    Serve.destroy plane;
    stats.Sched.makespan
  in
  let one = makespan ~cores:1 and two = makespan ~cores:2 in
  let speedup = float_of_int one /. float_of_int two in
  Alcotest.(check bool)
    (Printf.sprintf "hot tenant 1->2 core speedup %.2fx >= 1.6x" speedup)
    true (speedup >= 1.6)

let test_arena_per_session_order () =
  (* Rotor sharding may split one session's burst across several rings;
     replies must still come back in sequence order per session even
     when three sessions' submissions interleave. *)
  let config =
    {
      Serve.default_config with
      Serve.max_queue = 256;
      sched = { Sched.default_config with Sched.cores = 4; Sched.batch = 8 };
    }
  in
  let p, plane, backend, client0 = build ~seed:7052L ~config () in
  establish plane client0;
  let client1 = extra_client p backend ~seed:7152L in
  let client2 = extra_client p backend ~seed:7252L in
  establish plane client1;
  establish plane client2;
  let clients = [| client0; client1; client2 |] in
  let sent = Array.make (Array.length clients) [] in
  for i = 0 to 19 do
    Array.iteri
      (fun c client ->
        let payload = Printf.sprintf "s%d-%d" c i in
        sent.(c) <- payload :: sent.(c);
        match
          Serve.submit plane
            (Serve.Client.request client ~ecall:1 (Bytes.of_string payload))
        with
        | Ok () -> ()
        | Error r -> Alcotest.failf "submit rejected: %a" Serve.pp_reject r)
      clients
  done;
  let replies = Serve.flush plane in
  Alcotest.(check int) "every request replied" 60 (List.length replies);
  Array.iteri
    (fun c client ->
      let sid = Serve.Client.session_id client in
      let mine =
        List.filter (fun r -> r.Serve.r_session_id = sid) replies
      in
      Alcotest.(check int)
        (Printf.sprintf "session %d reply count" c)
        20 (List.length mine);
      ignore
        (List.fold_left
           (fun prev (r : Serve.reply) ->
             Alcotest.(check bool)
               (Printf.sprintf "session %d seqs ascending" c)
               true (r.Serve.r_seq > prev);
             r.Serve.r_seq)
           (-1) mine);
      (* read_reply advances the client's expected sequence, so decoding
         in list order also proves the bodies line up with what was sent. *)
      List.iteri
        (fun i (r : Serve.reply) ->
          match Serve.Client.read_reply client r with
          | Ok body ->
              Alcotest.(check string)
                (Printf.sprintf "session %d body %d" c i)
                (Printf.sprintf "s%d-%d" c i)
                (Bytes.to_string body)
          | Error e ->
              Alcotest.failf "read_reply failed: %a" Serve.pp_reject e)
        mine)
    clients;
  Serve.destroy plane

let test_close_session_mid_stage () =
  (* Closing a session with requests already staged in the arena must
     drop exactly those slots: the flush serves the surviving session
     only, and the tenant's queue accounting stays consistent. *)
  let p, plane, backend, client_a = build ~seed:7053L () in
  establish plane client_a;
  let client_b = extra_client p backend ~seed:7153L in
  establish plane client_b;
  let submit client tag i =
    match
      Serve.submit plane
        (Serve.Client.request client ~ecall:1
           (Bytes.of_string (Printf.sprintf "%s-%d" tag i)))
    with
    | Ok () -> ()
    | Error r -> Alcotest.failf "submit rejected: %a" Serve.pp_reject r
  in
  for i = 0 to 3 do
    submit client_a "a" i;
    submit client_b "b" i
  done;
  (match
     Serve.close_session plane ~session:(Serve.Client.session_id client_a)
   with
  | Ok () -> ()
  | Error r -> Alcotest.failf "close_session failed: %a" Serve.pp_reject r);
  let replies = Serve.flush plane in
  Alcotest.(check int) "only the live session replied" 4
    (List.length replies);
  let sid_b = Serve.Client.session_id client_b in
  List.iter
    (fun (r : Serve.reply) ->
      Alcotest.(check int) "reply belongs to the live session" sid_b
        r.Serve.r_session_id;
      match Serve.Client.read_reply client_b r with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "read_reply failed: %a" Serve.pp_reject e)
    replies;
  (* Queue accounting: the dead slots were released, so the live session
     can still fill the whole queue, and the closed one is gone. *)
  submit client_b "b2" 0;
  (match Serve.flush plane with
  | [ { Serve.r_result = Ok _; _ } ] -> ()
  | _ -> Alcotest.fail "post-close flush should serve one request");
  expect_reject "unknown-session"
    (Serve.submit plane
       (Serve.Client.request client_a ~ecall:1 (Bytes.of_string "ghost")));
  Serve.destroy plane

let suite =
  [
    Alcotest.test_case "roundtrip on all modes" `Quick test_roundtrip_modes;
    Alcotest.test_case "sgx tenant via quoting enclave" `Quick
      test_sgx_tenant_via_quoting_enclave;
    Alcotest.test_case "sgx wrong tenant pin rejected" `Quick
      test_sgx_wrong_tenant_pin_rejected;
    Alcotest.test_case "native tenant refused" `Quick test_native_tenant_refused;
    Alcotest.test_case "unknown tenant" `Quick test_unknown_tenant;
    Alcotest.test_case "replayed nonce" `Quick test_replayed_nonce;
    Alcotest.test_case "spliced accept fails binding" `Quick
      test_spliced_accept_fails_binding;
    Alcotest.test_case "garbage quote wire" `Quick test_garbage_quote_wire;
    Alcotest.test_case "tampered envelope rejected" `Quick
      test_tampered_envelope_rejected;
    Alcotest.test_case "respliced header rejected" `Quick
      test_respliced_header_rejected;
    Alcotest.test_case "replayed request rejected" `Quick
      test_replayed_request_rejected;
    Alcotest.test_case "unknown session" `Quick test_unknown_session;
    Alcotest.test_case "backpressure" `Quick test_backpressure;
    Alcotest.test_case "quota exhaustion and grant" `Quick
      test_quota_exhaustion_and_grant;
    Alcotest.test_case "tenant isolation" `Quick test_tenant_isolation;
    Alcotest.test_case "many requests ordered" `Quick test_many_requests_ordered;
    Alcotest.test_case "resize session (EDMM)" `Quick test_resize_session_edmm;
    Alcotest.test_case "resize session unsupported on SGX" `Quick
      test_resize_session_sgx_unsupported;
    Alcotest.test_case "state ecall reserved" `Quick test_state_ecall_reserved;
    Alcotest.test_case "transient fault absorbed" `Quick
      test_transient_fault_absorbed;
    Alcotest.test_case "permanent fault typed" `Quick test_permanent_fault_typed;
    Alcotest.test_case "chaos: two tenants, two cores" `Slow
      test_chaos_two_tenants_two_cores;
    Alcotest.test_case "close session" `Quick test_close_session;
    Alcotest.test_case "session churn reuses state slots" `Quick
      test_session_churn_reuses_state_slots;
    Alcotest.test_case "nonce cache bounded" `Quick test_nonce_cache_bounded;
    Alcotest.test_case "destroy owns tenant backends" `Quick
      test_destroy_owns_tenant_backends;
    Alcotest.test_case "sched stats read-only" `Quick test_sched_stats_read_only;
    Alcotest.test_case "reply splice rejected" `Quick test_reply_splice_rejected;
    Alcotest.test_case "ticket resume" `Quick test_ticket_resume;
    Alcotest.test_case "ticket tampered" `Quick test_ticket_tampered;
    Alcotest.test_case "ticket expired" `Quick test_ticket_expired;
    Alcotest.test_case "ticket replay rejected" `Quick test_ticket_replay_rejected;
    Alcotest.test_case "telemetry counters" `Quick test_telemetry_counters;
    QCheck_alcotest.to_alcotest arena_identity_qcheck;
    Alcotest.test_case "arena hot tenant scales across cores" `Quick
      test_arena_hot_tenant_scales;
    Alcotest.test_case "arena preserves per-session reply order" `Quick
      test_arena_per_session_order;
    Alcotest.test_case "close session mid-stage drops arena slots" `Quick
      test_close_session_mid_stage;
  ]
