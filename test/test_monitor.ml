(* RustMonitor: measured late launch, enclave lifecycle, isolation
   requirements R-1/R-2/R-3, mapping attacks, EDMM, keys, attestation. *)

open Hyperenclave

let platform ?(seed = 1000L) () = Platform.create ~seed ()

let simple_enclave ?(mode = Sgx_types.GU) ?(seed = 1000L) () =
  let p = platform ~seed () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config mode)
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  (p, handle)

let expect_violation name f =
  try
    f ();
    Alcotest.fail (name ^ ": expected Security_violation")
  with Monitor.Security_violation _ -> ()

(* --- measured late launch ------------------------------------------------------ *)

let test_launch_state () =
  let p = platform () in
  Alcotest.(check bool) "launched" true (Monitor.launched p.Platform.monitor);
  Alcotest.(check bool)
    "hapk derived" true
    (Bytes.length (Monitor.hapk p.Platform.monitor) = 32);
  (* Event log: 5 boot components + hypervisor + hapk. *)
  Alcotest.(check int)
    "event log entries" 7
    (List.length (Monitor.boot_log p.Platform.monitor));
  expect_violation "double launch" (fun () ->
      ignore
        (Monitor.launch p.Platform.monitor ~boot_log:[] ~sealed_root_key:None))

let test_launch_persists_root_key () =
  (* The sealed K_root blob lands on the OS disk at first boot. *)
  let p = platform () in
  Alcotest.(check bool)
    "sealed blob persisted" true
    (Kernel.disk_load p.Platform.kernel ~key:"hyperenclave/k_root.sealed" <> None)

let test_flooding_blocks_os_unseal () =
  (* After launch the flood PCR has been extended, so the (now demoted)
     OS cannot unseal K_root even with the blob in hand. *)
  let p = platform () in
  match Kernel.disk_load p.Platform.kernel ~key:"hyperenclave/k_root.sealed" with
  | None -> Alcotest.fail "expected sealed blob"
  | Some blob -> (
      try
        ignore (Hyperenclave.Tpm.unseal p.Platform.tpm blob);
        Alcotest.fail "OS must not be able to unseal K_root"
      with Hyperenclave.Tpm.Unseal_failed _ -> ())

(* --- isolation requirements ------------------------------------------------------ *)

let test_r1_reserved_invisible_to_normal_vm () =
  let p = platform () in
  let res_base, res_n = Monitor.reserved_range p.Platform.monitor in
  Alcotest.(check bool)
    "reserved frame unmapped" false
    (Monitor.frame_visible_to_normal_vm p.Platform.monitor ~frame:res_base);
  Alcotest.(check bool)
    "last reserved frame unmapped" false
    (Monitor.frame_visible_to_normal_vm p.Platform.monitor
       ~frame:(res_base + res_n - 1));
  Alcotest.(check bool)
    "OS frame mapped" true
    (Monitor.frame_visible_to_normal_vm p.Platform.monitor ~frame:0);
  (* A malicious kernel installs a PTE pointing into the reservation;
     the access must die on the nested table. *)
  Kernel.map_alias p.Platform.kernel p.Platform.proc ~vpn:0x7777 ~frame:res_base;
  try
    ignore
      (Kernel.proc_read p.Platform.kernel p.Platform.proc ~va:(0x7777 * 4096)
         ~len:8);
    Alcotest.fail "expected Npt_violation (R-1)"
  with Mmu.Npt_violation { gfn; _ } -> Alcotest.(check int) "gfn" res_base gfn

let test_r3_dma_blocked () =
  let p = platform () in
  let res_base, _ = Monitor.reserved_range p.Platform.monitor in
  try
    Hw.Iommu.dma_write p.Platform.iommu ~device:"nic" p.Platform.mem
      ~addr:(res_base * 4096) (Bytes.of_string "evil");
    Alcotest.fail "expected Dma_blocked (R-3)"
  with Hw.Iommu.Dma_blocked { frame; _ } ->
    Alcotest.(check int) "blocked at reserved base" res_base frame

let test_r2_enclave_confinement () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let handle2 =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed = "other" }
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  ignore handle2;
  (match Enclave.free_tcs enclave with
  | None -> Alcotest.fail "no tcs"
  | Some tcs -> Monitor.eenter m enclave ~tcs ~return_va:Urts.aep);
  (* Inside its own ELRANGE: fine (demand-committed). *)
  Monitor.enclave_write m enclave ~va:(0x1_0000_0000 + (100 * 4096))
    (Bytes.of_string "mine");
  (* The application's address space is NOT reachable (the enclave-malware
     defence of Sec. 6) - only the marshalling buffer is. *)
  expect_violation "app memory out of reach" (fun () ->
      ignore (Monitor.enclave_read m enclave ~va:Os.Process.heap_base ~len:8));
  expect_violation "other enclave out of reach" (fun () ->
      ignore (Monitor.enclave_read m enclave ~va:0x9_0000_0000 ~len:8));
  Monitor.eexit m enclave ~target_va:Urts.aep

(* --- mapping attacks (Fig. 9) ------------------------------------------------------ *)

let test_mapping_attacks () =
  let p = platform () in
  let secs =
    {
      Sgx_types.base_va = 0x1_0000_0000;
      size = 64 * 4096;
      attributes = { Sgx_types.debug = false; mode = Sgx_types.GU; xfrm = 3 };
      ssa_frame_pages = 1;
    }
  in
  let enclave = Kmod.ioctl_create_enclave p.Platform.kmod secs in
  let base_vpn = 0x1_0000_0000 / 4096 in
  Kmod.ioctl_add_page p.Platform.kmod enclave ~vpn:base_vpn
    ~content:(Bytes.of_string "code") ~perms:Page_table.rx
    ~page_type:Sgx_types.Pt_reg;
  (* Fig. 9a: remapping the same enclave VA again (aliasing). *)
  expect_violation "double add" (fun () ->
      Kmod.ioctl_add_page p.Platform.kmod enclave ~vpn:base_vpn
        ~content:Bytes.empty ~perms:Page_table.rw ~page_type:Sgx_types.Pt_reg);
  (* Outside ELRANGE. *)
  expect_violation "outside elrange" (fun () ->
      Kmod.ioctl_add_page p.Platform.kmod enclave ~vpn:(base_vpn + 1000)
        ~content:Bytes.empty ~perms:Page_table.rw ~page_type:Sgx_types.Pt_reg)

let test_marshalling_validation () =
  let p = platform () in
  let secs =
    {
      Sgx_types.base_va = 0x1_0000_0000;
      size = 64 * 4096;
      attributes = { Sgx_types.debug = false; mode = Sgx_types.GU; xfrm = 3 };
      ssa_frame_pages = 1;
    }
  in
  let make_enclave () =
    let enclave = Kmod.ioctl_create_enclave p.Platform.kmod secs in
    Kmod.ioctl_add_tcs p.Platform.kmod enclave
      ~vpn:(0x1_0000_0000 / 4096)
      ~entry_va:0x1_0000_0000 ~nssa:1
      ~ssa_base_vpn:((0x1_0000_0000 / 4096) + 1);
    enclave
  in
  let sigstruct_for enclave =
    (* A well-measured SIGSTRUCT: replicate what the loader computes. *)
    ignore enclave;
    Sgx_types.make_sigstruct ~vendor:p.Platform.signer
      ~enclave_hash:
        (Measure.expected secs
           [
             {
               Measure.vpn = 0x1_0000_0000 / 4096;
               perms = Page_table.rw;
               page_type = Sgx_types.Pt_tcs;
               content =
                 Measure.page_padded
                   (Bytes.of_string
                      (Printf.sprintf "tcs:%x:%d:%x" 0x1_0000_0000 1
                         ((0x1_0000_0000 / 4096) + 1)));
             };
           ])
      ~isv_prod_id:1 ~isv_svn:1
  in
  (* Fig. 9b: marshalling "buffer" whose frames live inside the EPC. *)
  let enclave = make_enclave () in
  let res_base, _ = Monitor.reserved_range p.Platform.monitor in
  expect_violation "ms frames in reserved memory" (fun () ->
      Monitor.einit p.Platform.monitor enclave ~sigstruct:(sigstruct_for enclave)
        ~marshalling:(0x5_0000_0000, 4096, [ (0x5_0000_0000 / 4096, res_base + 10) ]));
  (* Marshalling range overlapping ELRANGE (crafted address, Sec. 6). *)
  let enclave2 = make_enclave () in
  expect_violation "ms overlaps elrange" (fun () ->
      Monitor.einit p.Platform.monitor enclave2
        ~sigstruct:(sigstruct_for enclave2)
        ~marshalling:(0x1_0000_0000 + 4096, 4096, [ ((0x1_0000_0000 / 4096) + 1, 5) ]))

let test_einit_rejects_bad_sigstruct () =
  let p = platform () in
  let secs =
    {
      Sgx_types.base_va = 0x1_0000_0000;
      size = 16 * 4096;
      attributes = { Sgx_types.debug = false; mode = Sgx_types.GU; xfrm = 3 };
      ssa_frame_pages = 1;
    }
  in
  let enclave = Kmod.ioctl_create_enclave p.Platform.kmod secs in
  Kmod.ioctl_add_tcs p.Platform.kmod enclave ~vpn:(0x1_0000_0000 / 4096)
    ~entry_va:0x1_0000_0000 ~nssa:1
    ~ssa_base_vpn:((0x1_0000_0000 / 4096) + 1);
  (* Signature over the wrong measurement. *)
  let sigstruct =
    Sgx_types.make_sigstruct ~vendor:p.Platform.signer
      ~enclave_hash:(Bytes.make 32 'w') ~isv_prod_id:1 ~isv_svn:1
  in
  expect_violation "measurement mismatch" (fun () ->
      Monitor.einit p.Platform.monitor enclave ~sigstruct
        ~marshalling:(0x5_0000_0000, 0, []))

(* --- world switches ------------------------------------------------------------------ *)

let test_eexit_target_validation () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  (match Enclave.free_tcs enclave with
  | None -> Alcotest.fail "no tcs"
  | Some tcs -> Monitor.eenter m enclave ~tcs ~return_va:Urts.aep);
  (* Enclave malware trying to continue at an arbitrary address. *)
  expect_violation "arbitrary EEXIT target" (fun () ->
      Monitor.eexit m enclave ~target_va:0xdead_beef);
  Monitor.eexit m enclave ~target_va:Urts.aep

let test_tcs_busy_and_nesting () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let tcs =
    match Enclave.free_tcs enclave with
    | Some tcs -> tcs
    | None -> Alcotest.fail "no tcs"
  in
  Monitor.eenter m enclave ~tcs ~return_va:Urts.aep;
  expect_violation "same TCS re-entry" (fun () ->
      Monitor.eenter m enclave ~tcs ~return_va:Urts.aep);
  expect_violation "second enclave on the vCPU" (fun () ->
      Monitor.eenter m enclave
        ~tcs:(Option.get (Enclave.free_tcs enclave))
        ~return_va:Urts.aep);
  Monitor.eexit m enclave ~target_va:Urts.aep

let test_aex_eresume () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let tcs = Option.get (Enclave.free_tcs enclave) in
  Monitor.eenter m enclave ~tcs ~return_va:Urts.aep;
  Monitor.deliver_interrupt m enclave;
  Alcotest.(check bool) "AEX left the enclave" true (Monitor.current m = None);
  Alcotest.(check int) "SSA frame consumed" 1 tcs.Sgx_types.current_ssa;
  Alcotest.(check bool) "TCS stays busy across AEX" true tcs.Sgx_types.busy;
  Monitor.eresume m enclave ~tcs;
  Alcotest.(check int) "SSA frame released" 0 tcs.Sgx_types.current_ssa;
  Monitor.eexit m enclave ~target_va:Urts.aep;
  expect_violation "eresume without AEX" (fun () ->
      Monitor.eresume m enclave ~tcs)

(* --- demand paging and EDMM ------------------------------------------------------------ *)

let test_demand_commit () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let tcs = Option.get (Enclave.free_tcs enclave) in
  Monitor.eenter m enclave ~tcs ~return_va:Urts.aep;
  let before = Epc.used_by (Monitor.epc m) ~enclave_id:enclave.Enclave.id in
  let heap_va = 0x1_0000_0000 + (2000 * 4096) in
  Monitor.enclave_write m enclave ~va:heap_va (Bytes.of_string "on demand");
  Alcotest.(check int)
    "one page committed" (before + 1)
    (Epc.used_by (Monitor.epc m) ~enclave_id:enclave.Enclave.id);
  Alcotest.(check string)
    "content readable back" "on demand"
    (Bytes.to_string (Monitor.enclave_read m enclave ~va:heap_va ~len:9));
  Alcotest.(check int)
    "dyn page stat" 1
    enclave.Enclave.stats.Enclave.dyn_pages;
  Monitor.eexit m enclave ~target_va:Urts.aep

let test_edmm_perms () =
  let p, handle = simple_enclave ~mode:Sgx_types.GU () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let tcs = Option.get (Enclave.free_tcs enclave) in
  Monitor.eenter m enclave ~tcs ~return_va:Urts.aep;
  let va = 0x1_0000_0000 + (3000 * 4096) in
  Monitor.enclave_write m enclave ~va (Bytes.of_string "x");
  let vpn = va / 4096 in
  Monitor.emodpr m enclave ~vpn ~perms:Page_table.ro;
  expect_violation "write after EMODPR without handler" (fun () ->
      Monitor.enclave_write m enclave ~va (Bytes.of_string "y"));
  Monitor.emodpe m enclave ~vpn ~perms:Page_table.rw;
  Monitor.enclave_write m enclave ~va (Bytes.of_string "z");
  (* Page removal scrubs and frees. *)
  let used = Epc.used_by (Monitor.epc m) ~enclave_id:enclave.Enclave.id in
  Monitor.eremove_page m enclave ~vpn;
  Alcotest.(check int)
    "page freed" (used - 1)
    (Epc.used_by (Monitor.epc m) ~enclave_id:enclave.Enclave.id);
  Monitor.eexit m enclave ~target_va:Urts.aep

let test_penclave_only_self_managed () =
  let p, handle = simple_enclave ~mode:Sgx_types.GU () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  expect_violation "GU cannot self-manage PTEs" (fun () ->
      Monitor.penclave_set_perms m enclave ~vpn:(0x1_0000_0000 / 4096)
        ~perms:Page_table.rw)

(* --- keys and attestation ---------------------------------------------------------------- *)

let test_egetkey_identity () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let k1 = Monitor.egetkey m enclave Sgx_types.Seal_key_mrenclave in
  let k1' = Monitor.egetkey m enclave Sgx_types.Seal_key_mrenclave in
  Alcotest.(check bool) "stable" true (Bytes.equal k1 k1');
  let handle2 =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed = "B" }
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  let k2 = Monitor.egetkey m (Urts.enclave handle2) Sgx_types.Seal_key_mrenclave in
  Alcotest.(check bool) "distinct per MRENCLAVE" false (Bytes.equal k1 k2);
  (* Same signer => same MRSIGNER seal key across different enclaves. *)
  let s1 = Monitor.egetkey m enclave Sgx_types.Seal_key_mrsigner in
  let s2 = Monitor.egetkey m (Urts.enclave handle2) Sgx_types.Seal_key_mrsigner in
  Alcotest.(check bool) "mrsigner key shared" true (Bytes.equal s1 s2)

let test_report () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let report = Monitor.ereport m enclave ~report_data:(Bytes.of_string "hello") in
  Alcotest.(check bool) "verifies locally" true (Monitor.verify_report m report);
  let forged = { report with Sgx_types.mrenclave = Bytes.make 32 'f' } in
  Alcotest.(check bool) "forged fails" false (Monitor.verify_report m forged)

let test_measurement_matches_sdk_prediction () =
  let _, handle = simple_enclave () in
  (* EINIT succeeded, so the monitor-computed MRENCLAVE equalled the
     SDK's offline prediction; also check it is non-trivial. *)
  Alcotest.(check int) "mrenclave size" 32 (Bytes.length (Urts.mrenclave handle));
  Alcotest.(check bool)
    "not all zeroes" false
    (Bytes.equal (Urts.mrenclave handle) (Bytes.make 32 '\000'))

let test_eremove_scrubs () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let epc = Monitor.epc m in
  Alcotest.(check bool)
    "enclave holds frames" true
    (Epc.used_by epc ~enclave_id:enclave.Enclave.id > 0);
  Urts.destroy handle;
  Alcotest.(check int)
    "all frames returned" 0
    (Epc.used_by epc ~enclave_id:enclave.Enclave.id);
  Alcotest.(check bool)
    "enclave dead" true
    (enclave.Enclave.lifecycle = Enclave.Dead)

let test_audit_clean_and_detects () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  Alcotest.(check int) "fresh platform audits clean" 0
    (List.length (Monitor.audit m));
  (* Exercise the lifecycle, then re-audit. *)
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Alcotest.(check int) "after ECALL still clean" 0 (List.length (Monitor.audit m));
  (* Corrupt state the way a monitor bug would: map a reserved frame into
     the normal VM's nested table. *)
  let res_base, _ = Monitor.reserved_range m in
  Page_table.map (Monitor.normal_npt m) ~vpn:0xdead ~frame:res_base
    ~perms:Page_table.rw;
  (match Monitor.audit m with
  | [] -> Alcotest.fail "audit missed the R-1 violation"
  | findings ->
      Alcotest.(check bool)
        "finding names R-1" true
        (List.exists (fun f -> f.Monitor.invariant = "R-1") findings));
  Page_table.unmap (Monitor.normal_npt m) ~vpn:0xdead;
  Urts.destroy handle;
  Alcotest.(check int) "clean after destroy" 0 (List.length (Monitor.audit m))

let audit_qcheck =
  let open QCheck in
  (* Random lifecycle storms must never leave the monitor in a state the
     auditor objects to. *)
  let op_gen = Gen.int_bound 5 in
  Test.make ~name:"isolation invariants hold under random lifecycles" ~count:12
    (make ~print:Print.(list int) Gen.(list_size (int_range 5 25) op_gen))
    (fun ops ->
      let p = Platform.create ~seed:31337L () in
      let m = p.Platform.monitor in
      let live = ref [] in
      let counter = ref 0 in
      let new_enclave mode =
        incr counter;
        let handle =
          Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
            ~rng:p.Platform.rng ~signer:p.Platform.signer
            ~config:
              {
                (Urts.default_config mode) with
                Urts.code_seed = Printf.sprintf "audit-%d" !counter;
                elrange_pages = 512;
                ms_bytes = 64 * 1024;
              }
            ~ecalls:
              [
                ( 1,
                  fun (tenv : Tenv.t) input ->
                    let va = tenv.Tenv.malloc 4096 in
                    tenv.Tenv.write ~va input;
                    tenv.Tenv.read ~va ~len:(Bytes.length input) );
              ]
            ~ocalls:[]
        in
        live := handle :: !live
      in
      List.iter
        (fun op ->
          match op with
          | 0 -> new_enclave Sgx_types.GU
          | 1 -> new_enclave Sgx_types.HU
          | 2 -> new_enclave Sgx_types.P
          | 3 -> (
              match !live with
              | handle :: rest ->
                  Urts.destroy handle;
                  live := rest
              | [] -> ())
          | 4 | 5 | _ -> (
              match !live with
              | handle :: _ ->
                  let reply =
                    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "ping")
                      ~direction:Edge.In_out ()
                  in
                  if Bytes.to_string reply <> "ping" then
                    failwith "echo mismatch"
              | [] -> ()))
        ops;
      let findings = Monitor.audit m in
      List.iter (fun h -> Urts.destroy h) !live;
      findings = [] && Monitor.audit m = [])

let test_hypercall_abi () =
  (* Vector numbers must be unique, and refusals must surface as Fault
     rather than exceptions crossing the boundary. *)
  let p, handle = simple_enclave () in
  let enclave = Urts.enclave handle in
  let requests =
    [
      Hypercall.Ecreate enclave.Enclave.secs;
      Hypercall.Eadd
        {
          enclave;
          vpn = 0;
          content = Bytes.empty;
          perms = Page_table.rw;
          page_type = Sgx_types.Pt_reg;
        };
      Hypercall.Eremove enclave;
      Hypercall.Eexit { enclave; target_va = 0 };
      Hypercall.Egetkey { enclave; name = Sgx_types.Report_key };
    ]
  in
  let numbers = List.map Hypercall.number requests in
  Alcotest.(check int)
    "vectors unique" (List.length numbers)
    (List.length (List.sort_uniq compare numbers));
  (* EADD after EINIT is refused: Fault, not an exception. *)
  (match
     Hypercall.dispatch p.Platform.monitor
       (Hypercall.Eadd
          {
            enclave;
            vpn = 0x1_0000_0000 / 4096;
            content = Bytes.empty;
            perms = Page_table.rw;
            page_type = Sgx_types.Pt_reg;
          })
   with
  | Hypercall.Fault _ -> ()
  | _ -> Alcotest.fail "expected Fault for post-EINIT EADD");
  (* EGETKEY through the ABI returns the same key as the typed call. *)
  (match
     Hypercall.dispatch p.Platform.monitor
       (Hypercall.Egetkey { enclave; name = Sgx_types.Seal_key_mrenclave })
   with
  | Hypercall.Key key ->
      Alcotest.(check bool)
        "key matches typed path" true
        (Bytes.equal key
           (Monitor.egetkey p.Platform.monitor enclave Sgx_types.Seal_key_mrenclave))
  | _ -> Alcotest.fail "expected Key");
  Urts.destroy handle

let test_isa_mapping () =
  List.iter
    (fun isa ->
      Alcotest.(check bool)
        (Isa.name isa ^ " flexible") true
        (Isa.supports_flexible_modes isa);
      (* Every mode maps to a distinct privileged location. *)
      let mappings = List.map (Isa.secure_mode isa) Sgx_types.all_modes in
      Alcotest.(check int) "distinct mappings" 3
        (List.length (List.sort_uniq compare mappings)))
    Isa.all;
  (* Projection sanity: transitions are cheapest on ARM, and scaling never
     touches the memory system or Intel-silicon constants. *)
  let scaled = Isa.scale_cost_model Isa.Armv8 Cost_model.default in
  Alcotest.(check bool)
    "ARM hypercall cheaper" true
    (scaled.Cost_model.hypercall < Cost_model.default.Cost_model.hypercall);
  Alcotest.(check int)
    "DRAM cost untouched" Cost_model.default.Cost_model.cache_miss_dram
    scaled.Cost_model.cache_miss_dram;
  Alcotest.(check int)
    "SGX constants untouched" Cost_model.default.Cost_model.sgx_ecall
    scaled.Cost_model.sgx_ecall;
  Alcotest.(check int)
    "x86 identity" Cost_model.default.Cost_model.hypercall
    (Isa.scale_cost_model Isa.X86_64 Cost_model.default).Cost_model.hypercall

let test_world_switch_constants () =
  (* The composed Table-1 costs the model must reproduce exactly. *)
  let c = Cost_model.default in
  let check_mode mode eenter eexit ecall ocall =
    let name = Sgx_types.mode_name mode in
    Alcotest.(check int) (name ^ " eenter") eenter (World_switch.eenter_cost c mode);
    Alcotest.(check int) (name ^ " eexit") eexit (World_switch.eexit_cost c mode);
    Alcotest.(check int)
      (name ^ " ecall")
      ecall
      (World_switch.eenter_cost c mode + World_switch.eexit_cost c mode
      + World_switch.sdk_ecall_soft c mode);
    Alcotest.(check int)
      (name ^ " ocall")
      ocall
      (World_switch.eenter_cost c mode + World_switch.eexit_cost c mode
      + World_switch.sdk_ocall_soft c mode)
  in
  check_mode Sgx_types.HU 1163 1144 8440 4120;
  check_mode Sgx_types.GU 1704 1319 9480 4920;
  check_mode Sgx_types.P 1649 1401 9700 5260

let test_ssa_spill_restore () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let tcs = Option.get (Enclave.free_tcs enclave) in
  Monitor.eenter m enclave ~tcs ~return_va:Urts.aep;
  (* Arbitrary execution state at the moment the interrupt lands. *)
  Vcpu.scramble (Rng.create ~seed:555L) enclave.Enclave.regs;
  let snapshot = Vcpu.copy enclave.Enclave.regs in
  Monitor.deliver_interrupt m enclave;
  (* The SSA frame (in EPC) holds exactly the serialized state. *)
  let ssa_frame =
    match Page_table.lookup enclave.Enclave.gpt ~vpn:tcs.Sgx_types.ssa_base_vpn with
    | Some entry -> entry.Page_table.frame
    | None -> Alcotest.fail "SSA page unmapped"
  in
  let spilled =
    Hw.Phys_mem.read_bytes p.Platform.mem (ssa_frame * 4096) Vcpu.ssa_frame_bytes
  in
  Alcotest.(check bool)
    "SSA frame holds the serialized state" true
    (Bytes.equal spilled (Vcpu.serialize snapshot));
  Alcotest.(check bool)
    "SSA frame is EPC (invisible to the normal VM)" false
    (Monitor.frame_visible_to_normal_vm m ~frame:ssa_frame);
  (* Clobber the live registers, then ERESUME must restore the spill. *)
  Vcpu.scramble (Rng.create ~seed:556L) enclave.Enclave.regs;
  Monitor.eresume m enclave ~tcs;
  Alcotest.(check bool)
    "ERESUME restored the interrupted state" true
    (Vcpu.equal enclave.Enclave.regs snapshot);
  Monitor.eexit m enclave ~target_va:Urts.aep;
  Urts.destroy handle

let test_ssa_exhaustion () =
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  let tcs = Option.get (Enclave.free_tcs enclave) in
  Monitor.eenter m enclave ~tcs ~return_va:Urts.aep;
  tcs.Sgx_types.current_ssa <- tcs.Sgx_types.nssa;
  expect_violation "AEX with no free SSA frame" (fun () ->
      Monitor.deliver_interrupt m enclave);
  tcs.Sgx_types.current_ssa <- 0;
  Monitor.eexit m enclave ~target_va:Urts.aep;
  Urts.destroy handle

let tiny_epc_platform () =
  (* 134 MB DRAM - 128 MB OS - 4 MB monitor-private = 2 MB of EPC. *)
  Platform.create ~seed:1234L ~phys_mb:134 ~os_mb:128 ~monitor_mb:4 ()

let test_epc_overcommit_roundtrip () =
  let p = tiny_epc_platform () in
  let m = p.Platform.monitor in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.elrange_pages = 2048 }
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              (* Touch well beyond the 512-frame EPC, with recognizable
                 contents, then read everything back. *)
              let pages = 700 in
              let base = tenv.Tenv.malloc (pages * 4096) in
              for i = 0 to pages - 1 do
                tenv.Tenv.write ~va:(base + (i * 4096))
                  (Bytes.of_string (Printf.sprintf "page-%04d" i))
              done;
              let bad = ref 0 in
              for i = 0 to pages - 1 do
                let got = tenv.Tenv.read ~va:(base + (i * 4096)) ~len:9 in
                if Bytes.to_string got <> Printf.sprintf "page-%04d" i then incr bad
              done;
              Bytes.of_string (string_of_int !bad) );
        ]
      ~ocalls:[]
  in
  let bad = Urts.ecall handle ~id:1 ~direction:Edge.Out () in
  Alcotest.(check string) "every page survived eviction" "0" (Bytes.to_string bad);
  Alcotest.(check bool)
    (Printf.sprintf "evictions happened (%d)" (Monitor.epc_swap_count m))
    true
    (Monitor.epc_swap_count m > 100);
  Alcotest.(check int) "audit clean under pressure" 0
    (List.length (Monitor.audit m));
  Urts.destroy handle

let test_epc_swap_tamper_detected () =
  let p = tiny_epc_platform () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.elrange_pages = 2048 }
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              let pages = 700 in
              let base = tenv.Tenv.malloc (pages * 4096) in
              for i = 0 to pages - 1 do
                tenv.Tenv.write ~va:(base + (i * 4096)) (Bytes.of_string "x")
              done;
              Bytes.empty );
          ( 2,
            (* read exactly the page named by the input VA *)
            fun (tenv : Tenv.t) input ->
              let va = int_of_string (Bytes.to_string input) in
              tenv.Tenv.read ~va ~len:1 );
        ]
      ~ocalls:[]
  in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  (* Pick one sealed blob off the untrusted disk. *)
  let kernel = p.Platform.kernel in
  let enclave = Urts.enclave handle in
  let slot = ref None in
  for vpn = 0x1_0000_0000 / 4096 to (0x1_0000_0000 / 4096) + 2048 do
    if !slot = None then
      let key = Printf.sprintf "heswap:%d:%x" enclave.Enclave.id vpn in
      match Kernel.disk_load kernel ~key with
      | Some blob -> slot := Some (key, blob, vpn)
      | None -> ()
  done;
  let key, blob, vpn =
    match !slot with
    | Some s -> s
    | None -> Alcotest.fail "no swapped blob found on disk"
  in
  (* 1. Honest reload of an untampered sibling works (pick another slot).
     Capture its blob first: the reload consumes it (blobs are
     single-use), and step 3 replays those bytes. *)
  let sibling = ref None in
  for v = vpn + 1 to (0x1_0000_0000 / 4096) + 2048 do
    if !sibling = None then
      let k = Printf.sprintf "heswap:%d:%x" enclave.Enclave.id v in
      match Kernel.disk_load kernel ~key:k with
      | Some b -> sibling := Some (v, b)
      | None -> ()
  done;
  (match !sibling with
  | Some (v, _) ->
      ignore
        (Urts.ecall handle ~id:2
           ~data:(Bytes.of_string (string_of_int (v * 4096)))
           ~direction:Edge.In_out ())
  | None -> ());
  (* 2. Tampered blob: flipping one ciphertext byte must be detected. *)
  let tampered = Bytes.copy blob in
  let i = Bytes.length tampered - 1 in
  Bytes.set tampered i (Char.chr (Char.code (Bytes.get tampered i) lxor 1));
  Kernel.disk_store kernel ~key tampered;
  expect_violation "tampered swap blob" (fun () ->
      ignore
        (Urts.ecall handle ~id:2
           ~data:(Bytes.of_string (string_of_int (vpn * 4096)))
           ~direction:Edge.In_out ()));
  (* 3. Substitution: storing another page's valid blob in this slot is a
     replay and must also be rejected (the seal binds the page id). *)
  (match !sibling with
  | Some (_, other_blob) ->
      Kernel.disk_store kernel ~key other_blob;
      expect_violation "substituted swap blob" (fun () ->
          ignore
            (Urts.ecall handle ~id:2
               ~data:(Bytes.of_string (string_of_int (vpn * 4096)))
               ~direction:Edge.In_out ()))
  | None -> ());
  Urts.destroy handle

let pressure_enclave p =
  (* ECALL 1 writes a 700-page working set (well past the 512-frame EPC)
     and verifies every page on the way back; returns the bad-page count. *)
  Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
    ~signer:p.Platform.signer
    ~config:{ (Urts.default_config Sgx_types.GU) with Urts.elrange_pages = 2048 }
    ~ecalls:
      [
        ( 1,
          fun (tenv : Tenv.t) _ ->
            let pages = 700 in
            let base = tenv.Tenv.malloc (pages * 4096) in
            for i = 0 to pages - 1 do
              tenv.Tenv.write ~va:(base + (i * 4096))
                (Bytes.of_string (Printf.sprintf "page-%04d" i))
            done;
            let bad = ref 0 in
            for i = 0 to pages - 1 do
              let got = tenv.Tenv.read ~va:(base + (i * 4096)) ~len:9 in
              if Bytes.to_string got <> Printf.sprintf "page-%04d" i then incr bad
            done;
            Bytes.of_string (string_of_int !bad) );
      ]
    ~ocalls:[]

let swap_blobs_on_disk kernel ~enclave_id =
  let base_vpn = 0x1_0000_0000 / 4096 in
  let n = ref 0 in
  for vpn = base_vpn to base_vpn + 2048 do
    if
      Kernel.disk_load kernel
        ~key:(Printf.sprintf "heswap:%d:%x" enclave_id vpn)
      <> None
    then incr n
  done;
  !n

let test_eremove_purges_swap_residue () =
  (* EREMOVE used to scrub and free only the resident EPC frames: the
     (enclave, vpn) swap bookkeeping and the sealed blobs of pages still
     evicted at teardown survived forever. *)
  let p = tiny_epc_platform () in
  let m = p.Platform.monitor in
  let kernel = p.Platform.kernel in
  let handle = pressure_enclave p in
  let id = (Urts.enclave handle).Enclave.id in
  let bad = Urts.ecall handle ~id:1 ~direction:Edge.Out () in
  Alcotest.(check string) "working set intact" "0" (Bytes.to_string bad);
  Alcotest.(check bool)
    "pages swapped out before teardown" true
    (Monitor.swapped_out m ~enclave_id:id > 0);
  Alcotest.(check bool)
    "sealed blobs on the untrusted disk" true
    (swap_blobs_on_disk kernel ~enclave_id:id > 0);
  Urts.destroy handle;
  Alcotest.(check int)
    "no swap bookkeeping residue" 0
    (Monitor.swapped_out m ~enclave_id:id);
  Alcotest.(check int)
    "no sealed blobs left on the backend" 0
    (swap_blobs_on_disk kernel ~enclave_id:id);
  (* The platform stays healthy: a fresh enclave under the same pressure
     roundtrips cleanly. *)
  let handle2 = pressure_enclave p in
  let bad2 = Urts.ecall handle2 ~id:1 ~direction:Edge.Out () in
  Alcotest.(check string) "re-created enclave intact" "0" (Bytes.to_string bad2);
  Alcotest.(check int) "audit clean" 0 (List.length (Monitor.audit m));
  Urts.destroy handle2

let test_aex_restores_eenter_context () =
  (* The eventual EEXIT after AEX + ERESUME must restore the normal-world
     context recorded at EENTER — even if the primary OS ran something
     else (a CR3 switch) while the enclave thread was parked. *)
  let p, handle = simple_enclave () in
  let m = p.Platform.monitor in
  let cpu = p.Platform.cpu in
  let enclave = Urts.enclave handle in
  let tcs = Option.get (Enclave.free_tcs enclave) in
  let gpt0 = Mmu.gpt cpu and npt0 = Mmu.npt cpu in
  Monitor.eenter m enclave ~tcs ~return_va:Urts.aep;
  Monitor.deliver_interrupt m enclave;
  Alcotest.(check bool) "AEX restored the normal gpt" true (Mmu.gpt cpu == gpt0);
  (* OS schedules another process while the enclave thread is parked. *)
  let other_gpt = Page_table.create () in
  Mmu.switch_context cpu ~gpt:other_gpt ();
  Monitor.eresume m enclave ~tcs;
  Monitor.eexit m enclave ~target_va:Urts.aep;
  Alcotest.(check bool)
    "EEXIT returned to the context recorded at EENTER" true
    (Mmu.gpt cpu == gpt0);
  Alcotest.(check bool)
    "nested table restored too" true
    (match (Mmu.npt cpu, npt0) with
    | None, None -> true
    | Some a, Some b -> a == b
    | _ -> false);
  Urts.destroy handle

let test_swap_in_shoots_down_tlb () =
  (* A page's translation can outlive its eviction (the evict-time INVLPG
     covers only the evicting CPU's view), and after swap-in the page may
     occupy a different frame.  swap_in_page must shoot the vpn down; the
     telemetry counter makes the INVLPG observable. *)
  let p = tiny_epc_platform () in
  let m = p.Platform.monitor in
  let kernel = p.Platform.kernel in
  let handle = pressure_enclave p in
  let enclave = Urts.enclave handle in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.Out ());
  let base_vpn = 0x1_0000_0000 / 4096 in
  let swapped = ref None and resident = ref [] in
  for vpn = base_vpn + 64 to base_vpn + 2048 do
    let on_disk =
      Kernel.disk_load kernel
        ~key:(Printf.sprintf "heswap:%d:%x" enclave.Enclave.id vpn)
      <> None
    in
    if on_disk then begin
      if !swapped = None then swapped := Some vpn
    end
    else if
      List.length !resident < 4
      && Page_table.lookup enclave.Enclave.gpt ~vpn <> None
    then resident := vpn :: !resident
  done;
  let swapped_vpn =
    match !swapped with
    | Some vpn -> vpn
    | None -> Alcotest.fail "no swapped page found"
  in
  (* Free a few frames first so the swap-in below needs no eviction: the
     measured INVLPG then belongs to the swap-in alone. *)
  List.iter (fun vpn -> Monitor.eremove_page m enclave ~vpn) !resident;
  let tcs = Option.get (Enclave.free_tcs enclave) in
  Monitor.eenter m enclave ~tcs ~return_va:Urts.aep;
  let before = Telemetry.snapshot (Monitor.telemetry m) in
  ignore (Monitor.enclave_read m enclave ~va:(swapped_vpn * 4096) ~len:1);
  let after = Telemetry.snapshot (Monitor.telemetry m) in
  Monitor.eexit m enclave ~target_va:Urts.aep;
  let delta name =
    match List.assoc_opt name (Telemetry.delta_counters ~before ~after) with
    | Some d -> d
    | None -> 0
  in
  Alcotest.(check int) "one swap-in, no eviction" 1 (delta "epc.swap_in");
  Alcotest.(check int) "no eviction needed" 0 (delta "epc.evict");
  Alcotest.(check bool)
    "swap-in shot down the stale translation" true
    (delta "tlb.invlpg" >= 1);
  Urts.destroy handle

let test_multi_tcs_threads () =
  (* Two enclave threads: thread 1 is parked by an interrupt (TCS busy,
     state in its SSA) while thread 2 enters and completes on a second
     TCS; thread 1 then resumes exactly where it stopped. *)
  let p = Platform.create ~seed:1400L () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.tcs_count = 3 }
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[]
  in
  let m = p.Platform.monitor in
  let enclave = Urts.enclave handle in
  Alcotest.(check int) "three TCS" 3 (List.length enclave.Enclave.tcs_list);
  let tcs1 = Option.get (Enclave.free_tcs enclave) in
  Monitor.eenter m enclave ~tcs:tcs1 ~return_va:Urts.aep;
  Vcpu.scramble (Rng.create ~seed:41L) enclave.Enclave.regs;
  let thread1_state = Vcpu.copy enclave.Enclave.regs in
  Monitor.deliver_interrupt m enclave;
  Alcotest.(check bool) "TCS1 parked busy" true tcs1.Sgx_types.busy;
  (* Thread 2 runs to completion while thread 1 is parked. *)
  let tcs2 = Option.get (Enclave.free_tcs enclave) in
  Alcotest.(check bool) "a different TCS" true (tcs2 != tcs1);
  Monitor.eenter m enclave ~tcs:tcs2 ~return_va:Urts.aep;
  Monitor.enclave_write m enclave ~va:(0x1_0000_0000 + (500 * 4096))
    (Bytes.of_string "thread-2");
  Monitor.eexit m enclave ~target_va:Urts.aep;
  Alcotest.(check bool) "TCS2 released" false tcs2.Sgx_types.busy;
  (* Thread 1 resumes with its exact pre-interrupt state. *)
  Monitor.eresume m enclave ~tcs:tcs1;
  Alcotest.(check bool)
    "thread 1 state intact across thread 2's run" true
    (Vcpu.equal enclave.Enclave.regs thread1_state);
  Monitor.eexit m enclave ~target_va:Urts.aep;
  Alcotest.(check int) "audit clean" 0 (List.length (Monitor.audit m));
  Urts.destroy handle

(* --- clock-hand victim selection (PR 4 regression) ----------------------- *)

(* The old [find_victim] walked [Hashtbl.fold] order, so whichever
   enclave's frames hashed first absorbed every eviction.  The
   clock-hand cursor must rotate across the pool: thrash a tiny pool
   shared by two enclaves and demand both get victimised. *)
let test_clock_hand_spreads_victims () =
  let epc = Epc.create ~base_frame:100 ~nframes:8 in
  for i = 0 to 3 do
    ignore
      (Epc.alloc epc ~owner:(Epc.Enclave 1) ~page_type:Sgx_types.Pt_reg
         ~vpn:(0x5000 + i))
  done;
  for i = 4 to 7 do
    ignore
      (Epc.alloc epc ~owner:(Epc.Enclave 2) ~page_type:Sgx_types.Pt_reg
         ~vpn:(0x5000 + i))
  done;
  let victims = ref [] in
  for _ = 1 to 8 do
    match Epc.find_victim epc ~prefer_not:None with
    | None -> Alcotest.fail "full pool but no victim"
    | Some (frame, info) ->
        let owner_id =
          match info.Epc.owner with Epc.Enclave id -> id | Epc.Monitor -> -1
        in
        victims := owner_id :: !victims;
        (* Evict-and-refault: the frame comes straight back for the same
           owner, freshly referenced — exactly the thrashing pattern. *)
        Epc.free epc frame;
        ignore
          (Epc.alloc epc ~owner:info.Epc.owner ~page_type:Sgx_types.Pt_reg
             ~vpn:info.Epc.vpn)
  done;
  Alcotest.(check bool) "enclave 1 evicted" true (List.mem 1 !victims);
  Alcotest.(check bool) "enclave 2 evicted" true (List.mem 2 !victims)

let test_find_victim_respects_in_use () =
  let epc = Epc.create ~base_frame:0 ~nframes:6 in
  let frames =
    List.init 6 (fun i ->
        Epc.alloc epc
          ~owner:(Epc.Enclave (if i < 3 then 1 else 2))
          ~page_type:Sgx_types.Pt_reg ~vpn:(0x9000 + i))
  in
  ignore frames;
  (* Enclave 1's frames are "in active use" (say, SSA of a running
     vCPU): every pick must land on enclave 2. *)
  let in_use _frame (info : Epc.frame_info) = info.Epc.owner = Epc.Enclave 1 in
  for _ = 1 to 4 do
    match Epc.find_victim ~in_use epc ~prefer_not:None with
    | None -> Alcotest.fail "no victim despite evictable frames"
    | Some (_, info) ->
        Alcotest.(check bool)
          "in-use frames skipped" true
          (info.Epc.owner = Epc.Enclave 2)
  done;
  (* prefer_not steers away from enclave 2 when alternatives exist. *)
  (match Epc.find_victim epc ~prefer_not:(Some 2) with
  | Some (_, info) ->
      Alcotest.(check bool)
        "prefer_not honoured" true
        (info.Epc.owner = Epc.Enclave 1)
  | None -> Alcotest.fail "no victim with prefer_not");
  (* If everything is nominally in use the relaxing passes still find a
     victim — refusing entirely would deadlock the allocator. *)
  (match Epc.find_victim ~in_use:(fun _ _ -> true) epc ~prefer_not:None with
  | Some _ -> ()
  | None -> Alcotest.fail "relaxing fallback must still evict");
  (* Control structures are never victims even under full relaxation. *)
  let epc2 = Epc.create ~base_frame:0 ~nframes:2 in
  ignore
    (Epc.alloc epc2 ~owner:(Epc.Enclave 1) ~page_type:Sgx_types.Pt_tcs ~vpn:1);
  ignore
    (Epc.alloc epc2 ~owner:(Epc.Enclave 1) ~page_type:Sgx_types.Pt_ssa ~vpn:2);
  Alcotest.(check bool)
    "TCS/SSA never evictable" true
    (Epc.find_victim epc2 ~prefer_not:None = None)

(* Two enclaves thrashing a small EPC together: both must survive with
   their contents intact, and the eviction traffic must touch both
   (the old insertion-order scan drained one enclave exclusively). *)
let test_two_enclaves_thrash_small_epc () =
  let p = tiny_epc_platform () in
  let m = p.Platform.monitor in
  let pages = 400 in
  let mk tag =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:
        {
          (Urts.default_config Sgx_types.GU) with
          Urts.code_seed = tag;
          elrange_pages = 2048;
        }
      ~ecalls:
        [
          ( 1,
            (* write phase: touch [pages] pages with recognizable bytes *)
            fun (tenv : Tenv.t) _ ->
              let base = tenv.Tenv.malloc (pages * 4096) in
              for i = 0 to pages - 1 do
                tenv.Tenv.write ~va:(base + (i * 4096))
                  (Bytes.of_string (Printf.sprintf "%s-%04d" tag i))
              done;
              Bytes.of_string (string_of_int base) );
          ( 2,
            (* verify phase: count corrupted pages *)
            fun (tenv : Tenv.t) input ->
              let base = int_of_string (Bytes.to_string input) in
              let bad = ref 0 in
              for i = 0 to pages - 1 do
                let want = Printf.sprintf "%s-%04d" tag i in
                let got =
                  tenv.Tenv.read ~va:(base + (i * 4096))
                    ~len:(String.length want)
                in
                if Bytes.to_string got <> want then incr bad
              done;
              Bytes.of_string (string_of_int !bad) );
        ]
      ~ocalls:[]
  in
  let a = mk "thrash-A" and b = mk "thrash-B" in
  let base_a = Urts.ecall a ~id:1 ~direction:Edge.Out () in
  let base_b = Urts.ecall b ~id:1 ~direction:Edge.Out () in
  let id_a = (Urts.enclave a).Enclave.id
  and id_b = (Urts.enclave b).Enclave.id in
  (* Both write phases overflow the ~512-frame EPC, so eviction ran; the
     clock hand must have spread it over both enclaves. *)
  Alcotest.(check bool)
    (Printf.sprintf "evictions happened (%d)" (Monitor.epc_swap_count m))
    true
    (Monitor.epc_swap_count m > 0);
  Alcotest.(check bool)
    (Printf.sprintf "enclave A saw eviction (%d out)"
       (Monitor.swapped_out m ~enclave_id:id_a))
    true
    (Monitor.swapped_out m ~enclave_id:id_a > 0);
  let bad_a = Urts.ecall a ~id:2 ~data:base_a ~direction:Edge.In_out () in
  (* A's read-back faulted its pages in again, which must have pushed
     the hand into B's frames — eviction rotates, it doesn't keep
     draining A. *)
  Alcotest.(check bool)
    (Printf.sprintf "enclave B saw eviction (%d out)"
       (Monitor.swapped_out m ~enclave_id:id_b))
    true
    (Monitor.swapped_out m ~enclave_id:id_b > 0);
  let bad_b = Urts.ecall b ~id:2 ~data:base_b ~direction:Edge.In_out () in
  Alcotest.(check string) "A intact" "0" (Bytes.to_string bad_a);
  Alcotest.(check string) "B intact" "0" (Bytes.to_string bad_b);
  Alcotest.(check int) "audit clean" 0 (List.length (Monitor.audit m));
  Urts.destroy a;
  Urts.destroy b

let suite =
  [
    QCheck_alcotest.to_alcotest audit_qcheck;
    Alcotest.test_case "clock-hand spreads victims" `Quick
      test_clock_hand_spreads_victims;
    Alcotest.test_case "find_victim skips in-use frames" `Quick
      test_find_victim_respects_in_use;
    Alcotest.test_case "two enclaves thrash small EPC" `Quick
      test_two_enclaves_thrash_small_epc;
    Alcotest.test_case "multi-TCS threads" `Quick test_multi_tcs_threads;
    Alcotest.test_case "EPC overcommit roundtrip" `Quick
      test_epc_overcommit_roundtrip;
    Alcotest.test_case "EPC swap tamper" `Quick test_epc_swap_tamper_detected;
    Alcotest.test_case "EREMOVE purges swap residue" `Quick
      test_eremove_purges_swap_residue;
    Alcotest.test_case "AEX/ERESUME context restore" `Quick
      test_aex_restores_eenter_context;
    Alcotest.test_case "swap-in TLB shootdown" `Quick
      test_swap_in_shoots_down_tlb;
    Alcotest.test_case "SSA spill/restore" `Quick test_ssa_spill_restore;
    Alcotest.test_case "SSA exhaustion" `Quick test_ssa_exhaustion;
    Alcotest.test_case "hypercall ABI" `Quick test_hypercall_abi;
    Alcotest.test_case "ISA mapping (Sec. 8)" `Quick test_isa_mapping;
    Alcotest.test_case "Table-1 constants" `Quick test_world_switch_constants;
    Alcotest.test_case "audit" `Quick test_audit_clean_and_detects;
    Alcotest.test_case "measured late launch" `Quick test_launch_state;
    Alcotest.test_case "K_root persisted" `Quick test_launch_persists_root_key;
    Alcotest.test_case "PCR flooding blocks OS unseal" `Quick
      test_flooding_blocks_os_unseal;
    Alcotest.test_case "R-1 reserved memory" `Quick
      test_r1_reserved_invisible_to_normal_vm;
    Alcotest.test_case "R-3 DMA blocked" `Quick test_r3_dma_blocked;
    Alcotest.test_case "R-2 enclave confinement" `Quick test_r2_enclave_confinement;
    Alcotest.test_case "mapping attacks (Fig. 9a)" `Quick test_mapping_attacks;
    Alcotest.test_case "marshalling validation (Fig. 9b)" `Quick
      test_marshalling_validation;
    Alcotest.test_case "EINIT sigstruct checks" `Quick test_einit_rejects_bad_sigstruct;
    Alcotest.test_case "EEXIT target validation" `Quick test_eexit_target_validation;
    Alcotest.test_case "TCS busy/nesting" `Quick test_tcs_busy_and_nesting;
    Alcotest.test_case "AEX / ERESUME" `Quick test_aex_eresume;
    Alcotest.test_case "demand commit (EDMM)" `Quick test_demand_commit;
    Alcotest.test_case "EMODPR/EMODPE/EREMOVE" `Quick test_edmm_perms;
    Alcotest.test_case "P-Enclave exclusivity" `Quick test_penclave_only_self_managed;
    Alcotest.test_case "EGETKEY identity binding" `Quick test_egetkey_identity;
    Alcotest.test_case "EREPORT local attestation" `Quick test_report;
    Alcotest.test_case "measurement = SDK prediction" `Quick
      test_measurement_matches_sdk_prediction;
    Alcotest.test_case "EREMOVE scrubs and frees" `Quick test_eremove_scrubs;
  ]
