(* The SGX-compatible SDK: loader, edge calls, sealing, exceptions,
   in-enclave services. *)

open Hyperenclave

let fixture ?(mode = Sgx_types.GU) ?(seed = 3000L) ~ecalls ~ocalls () =
  let p = Platform.create ~seed () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config mode)
      ~ecalls ~ocalls
  in
  (p, handle)

let test_ecall_roundtrip () =
  let _, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (_ : Tenv.t) input ->
              Bytes.of_string (String.uppercase_ascii (Bytes.to_string input)) );
        ]
      ~ocalls:[] ()
  in
  let reply =
    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "payload") ~direction:Edge.In_out ()
  in
  Alcotest.(check string) "data through ms buffer" "PAYLOAD" (Bytes.to_string reply);
  Alcotest.check_raises "unknown ecall" (Urts.Enclave_error "unknown ECALL 99")
    (fun () -> ignore (Urts.ecall handle ~id:99 ~direction:Edge.In ()));
  Urts.destroy handle

let test_ocall_roundtrip () =
  let _, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) input ->
              let reply = tenv.Tenv.ocall ~id:7 ~data:input Edge.In_out in
              Bytes.cat reply (Bytes.of_string "!") );
        ]
      ~ocalls:[ (7, fun data -> Bytes.cat (Bytes.of_string "echo:") data) ]
      ()
  in
  let reply =
    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "ping") ~direction:Edge.In_out ()
  in
  Alcotest.(check string) "nested ocall" "echo:ping!" (Bytes.to_string reply);
  let stats = Urts.stats handle in
  Alcotest.(check int) "ecall count" 1 stats.Enclave.ecalls;
  Alcotest.(check int) "ocall count" 1 stats.Enclave.ocalls;
  Urts.destroy handle

let test_heap_and_memory () =
  let _, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              let a = tenv.Tenv.malloc 100 in
              let b = tenv.Tenv.malloc 100 in
              Alcotest.(check bool) "allocations disjoint" true (b >= a + 100);
              tenv.Tenv.write ~va:a (Bytes.of_string "in-enclave heap");
              tenv.Tenv.read ~va:a ~len:15 );
        ]
      ~ocalls:[] ()
  in
  Alcotest.(check string)
    "heap rw" "in-enclave heap"
    (Bytes.to_string (Urts.ecall handle ~id:1 ~direction:Edge.Out ()));
  Urts.destroy handle

let test_sealing () =
  let _, handle =
    fixture
      ~ecalls:
        [
          (1, fun (tenv : Tenv.t) input -> tenv.Tenv.seal input);
          (2, fun (tenv : Tenv.t) blob -> tenv.Tenv.unseal blob);
        ]
      ~ocalls:[] ()
  in
  let blob =
    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "database key")
      ~direction:Edge.In_out ()
  in
  Alcotest.(check bool)
    "ciphertext differs" false
    (Bytes.equal blob (Bytes.of_string "database key"));
  Alcotest.(check string)
    "unseal roundtrip" "database key"
    (Bytes.to_string (Urts.ecall handle ~id:2 ~data:blob ~direction:Edge.In_out ()));
  Urts.destroy handle

let test_sealing_bound_to_mrenclave () =
  (* A different enclave (different code identity) cannot unseal. *)
  let p = Platform.create ~seed:3001L () in
  let make seed_name =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed = seed_name }
      ~ecalls:
        [
          (1, fun (tenv : Tenv.t) input -> tenv.Tenv.seal input);
          (2, fun (tenv : Tenv.t) blob -> tenv.Tenv.unseal blob);
        ]
      ~ocalls:[]
  in
  let a = make "app-A" and b = make "app-B" in
  let blob =
    Urts.ecall a ~id:1 ~data:(Bytes.of_string "secret") ~direction:Edge.In_out ()
  in
  Alcotest.(check string)
    "same enclave unseals" "secret"
    (Bytes.to_string (Urts.ecall a ~id:2 ~data:blob ~direction:Edge.In_out ()));
  (try
     ignore (Urts.ecall b ~id:2 ~data:blob ~direction:Edge.In_out ());
     Alcotest.fail "expected unseal failure in foreign enclave"
   with Crypto.Authenc.Authentication_failure -> ());
  Urts.destroy a;
  Urts.destroy b

let run_exception_test mode =
  let fired = ref 0 in
  let _, handle =
    fixture ~mode
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              tenv.Tenv.register_exception_handler ~vector:"#UD" (fun _ ->
                  incr fired;
                  true);
              tenv.Tenv.raise_exception Sgx_types.Ud;
              tenv.Tenv.raise_exception Sgx_types.Ud;
              Bytes.of_string "survived" );
        ]
      ~ocalls:[] ()
  in
  let reply = Urts.ecall handle ~id:1 ~direction:Edge.Out () in
  Alcotest.(check string) "execution continued" "survived" (Bytes.to_string reply);
  Alcotest.(check int) "handler fired twice" 2 !fired;
  let stats = Urts.stats handle in
  Urts.destroy handle;
  stats

let test_exceptions_two_phase () =
  let stats = run_exception_test Sgx_types.GU in
  (* GU: each #UD goes out through an AEX. *)
  Alcotest.(check bool) "AEXes happened" true (stats.Enclave.aexs >= 2);
  Alcotest.(check int) "no in-enclave delivery" 0
    stats.Enclave.in_enclave_exceptions

let test_exceptions_in_enclave () =
  let stats = run_exception_test Sgx_types.P in
  Alcotest.(check int) "delivered in-enclave" 2
    stats.Enclave.in_enclave_exceptions;
  Alcotest.(check int) "no AEX" 0 stats.Enclave.aexs

let test_gc_page_permissions () =
  List.iter
    (fun mode ->
      let restored = ref 0 in
      let _, handle =
        fixture ~mode
          ~ecalls:
            [
              ( 1,
                fun (tenv : Tenv.t) _ ->
                  let buf = tenv.Tenv.malloc 4096 in
                  tenv.Tenv.write ~va:buf (Bytes.of_string "init");
                  tenv.Tenv.register_exception_handler ~vector:"#PF"
                    (fun vector ->
                      match vector with
                      | Sgx_types.Pf { va; _ } ->
                          incr restored;
                          tenv.Tenv.set_page_perms ~vpn:(va / 4096)
                            ~perms:Page_table.rw ~grant:true;
                          true
                      | _ -> false);
                  tenv.Tenv.set_page_perms ~vpn:(buf / 4096)
                    ~perms:Page_table.ro ~grant:false;
                  tenv.Tenv.write ~va:buf (Bytes.of_string "after fault");
                  tenv.Tenv.read ~va:buf ~len:11 );
            ]
          ~ocalls:[] ()
      in
      let reply = Urts.ecall handle ~id:1 ~direction:Edge.Out () in
      Alcotest.(check string)
        (Sgx_types.mode_name mode ^ " GC write landed")
        "after fault" (Bytes.to_string reply);
      Alcotest.(check int) "one fault" 1 !restored;
      Urts.destroy handle)
    [ Sgx_types.GU; Sgx_types.P ]

let test_ms_window_user_check () =
  (* user_check-style direct marshalling-buffer access from both sides. *)
  let p, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              let data = tenv.Tenv.ms_read ~off:1024 ~len:5 in
              tenv.Tenv.ms_write ~off:2048 (Bytes.map Char.uppercase_ascii data);
              Bytes.empty );
        ]
      ~ocalls:[] ()
  in
  ignore p;
  (* The app cannot see tenv, but the test can seed the buffer through the
     enclave's own window on a previous call; here we just verify the
     window is readable and writable and stays inside R-2. *)
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Urts.destroy handle

let test_report_quote_api () =
  let _, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) data ->
              let report = tenv.Tenv.report ~report_data:data in
              report.Sgx_types.report_data );
        ]
      ~ocalls:[] ()
  in
  let reply =
    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "nonce-xyz")
      ~direction:Edge.In_out ()
  in
  Alcotest.(check string)
    "report data embedded" "nonce-xyz"
    (String.sub (Bytes.to_string reply) 0 9);
  let quote = Urts.gen_quote handle ~report_data:(Bytes.of_string "q") ~nonce:(Bytes.of_string "n") in
  Alcotest.(check bool)
    "quote carries hapk" true
    (Bytes.length quote.Monitor.hapk = 32);
  Urts.destroy handle

let test_no_free_tcs () =
  let _, handle =
    fixture
      ~ecalls:
        [ (1, fun (tenv : Tenv.t) _ -> ignore (tenv.Tenv.ocall ~id:9 Edge.In); Bytes.empty) ]
      ~ocalls:[ (9, fun _ -> Bytes.empty) ]
      ()
  in
  (* Exhaust both TCS from outside while the enclave is idle. *)
  let enclave = Urts.enclave handle in
  List.iter (fun (tcs : Sgx_types.tcs) -> tcs.Sgx_types.busy <- true)
    enclave.Enclave.tcs_list;
  (try
     ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
     Alcotest.fail "expected no-free-TCS failure"
   with Urts.Enclave_error m ->
     Alcotest.(check bool) "typed TCS-busy error"
       true
       (String.length m >= 8 && String.sub m 0 8 = "TCS busy"));
  List.iter (fun (tcs : Sgx_types.tcs) -> tcs.Sgx_types.busy <- false)
    enclave.Enclave.tcs_list;
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Urts.destroy handle

(* --- ms-region split offsets (PR 4 regression) --------------------------- *)

(* The input/output/ocalloc split used to be recomputed per call with
   truncating division, so an ms_bytes that doesn't divide evenly put
   the boundaries mid-page and the regions disagreed call to call.  Now
   the splits are rounded up to page boundaries once at build time:
   with ms_bytes = 5 pages the input region is exactly 3 pages (12288
   bytes), not the truncated 10240. *)
let test_ms_split_page_aligned () =
  let p = Platform.create ~seed:3010L () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:
        { (Urts.default_config Sgx_types.GU) with Urts.ms_bytes = 5 * 4096 }
      ~ecalls:
        [
          (1, fun (_ : Tenv.t) input -> Bytes.of_string
                 (string_of_int (Bytes.length input)));
          (2, fun (_ : Tenv.t) input ->
                 (* reply sized by the caller: output-boundary probe *)
                 Bytes.make (int_of_string (Bytes.to_string input)) 'o');
        ]
      ~ocalls:[]
  in
  (* Exactly at the aligned input boundary: 3 pages fits... *)
  let at_boundary =
    Urts.ecall handle ~id:1 ~data:(Bytes.make 12288 'i') ~direction:Edge.In ()
  in
  Alcotest.(check string) "input of exactly 3 pages accepted" "12288"
    (Bytes.to_string at_boundary);
  (* ...and one byte past is a typed refusal, not a silent spill into
     the output region. *)
  (try
     ignore
       (Urts.ecall handle ~id:1 ~data:(Bytes.make 12289 'i') ~direction:Edge.In ());
     Alcotest.fail "input past the split accepted"
   with Urts.Enclave_error _ -> ());
  (* Output region is one page (pages 3..4): exactly 4096 fits, 4097
     refused. *)
  let out =
    Urts.ecall handle ~id:2 ~data:(Bytes.of_string "4096") ~direction:Edge.In_out ()
  in
  Alcotest.(check int) "output of exactly one page" 4096 (Bytes.length out);
  (try
     ignore
       (Urts.ecall handle ~id:2 ~data:(Bytes.of_string "4097")
          ~direction:Edge.In_out ());
     Alcotest.fail "output past the split accepted"
   with Urts.Enclave_error _ -> ());
  Urts.destroy handle

let test_ms_bytes_validated () =
  let p = Platform.create ~seed:3011L () in
  let make ms_bytes =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.ms_bytes }
      ~ecalls:[ (1, fun _ input -> input) ]
      ~ocalls:[]
  in
  (try
     ignore (make (4 * 4096 + 100));
     Alcotest.fail "unaligned ms_bytes accepted"
   with Urts.Enclave_error _ -> ());
  (try
     ignore (make (2 * 4096));
     Alcotest.fail "too-small ms_bytes accepted"
   with Urts.Enclave_error _ -> ());
  let ok = make (4 * 4096) in
  ignore (Urts.ecall ok ~id:1 ~data:(Bytes.of_string "x") ~direction:Edge.In_out ());
  Urts.destroy ok

(* --- re-entrant ECALL from an OCALL handler (PR 4 regression) ------------ *)

(* The old path re-entered on whatever TCS was "free", which could be
   the parked one — clobbering the suspended thread's SSA.  Now the TCS
   parked on an OCALL is reserved: a nested ECALL takes a different TCS
   or gets a typed TCS-busy refusal. *)
let test_nested_ecall_in_ocall () =
  let handle_ref = ref None in
  let _, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) input ->
              (* Outer ECALL: go out through an OCALL and come back. *)
              let nested = tenv.Tenv.ocall ~id:9 ~data:input Edge.In_out in
              Bytes.cat (Bytes.of_string "outer:") nested );
          (2, fun (_ : Tenv.t) input -> Bytes.cat (Bytes.of_string "inner:") input);
        ]
      ~ocalls:
        [
          ( 9,
            fun data ->
              (* Re-entrant ECALL from inside the OCALL handler: must run
                 on a TCS other than the parked one. *)
              let h = Option.get !handle_ref in
              Urts.ecall h ~id:2 ~data ~direction:Edge.In_out () );
        ]
      ()
  in
  handle_ref := Some handle;
  let reply =
    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "go") ~direction:Edge.In_out ()
  in
  Alcotest.(check string)
    "nested ECALL ran on a second TCS" "outer:inner:go" (Bytes.to_string reply);
  (* All TCSs released afterwards. *)
  Alcotest.(check int) "both TCS free again" 2 (Urts.free_tcs_count handle);
  Urts.destroy handle

let test_nested_ecall_exhaustion_is_typed () =
  (* Depth 2 of nesting on a 2-TCS enclave: the innermost re-entry finds
     the pool exhausted (one TCS parked on each OCALL frame) and must be
     refused with a typed TCS-busy error — while the outer call still
     completes once the handler turns that refusal into a reply. *)
  let handle_ref = ref None in
  let ocall_9 _ =
    (* depth 1: the nested ECALL takes the second (last free) TCS *)
    Urts.ecall (Option.get !handle_ref) ~id:2 ~direction:Edge.Out ()
  in
  let ocall_10 _ =
    (* depth 2: no TCS left — expect the typed refusal right here *)
    try
      ignore (Urts.ecall (Option.get !handle_ref) ~id:3 ~direction:Edge.Out ());
      Bytes.of_string "UNEXPECTED-ENTRY"
    with Urts.Enclave_error m
      when String.length m >= 8 && String.sub m 0 8 = "TCS busy" ->
        Bytes.of_string "refused"
  in
  let _, handle =
    fixture ~seed:3012L
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              tenv.Tenv.ocall ~id:9 ~data:(Bytes.of_string "d1") Edge.In_out );
          ( 2,
            fun (tenv : Tenv.t) _ ->
              tenv.Tenv.ocall ~id:10 ~data:(Bytes.of_string "d2") Edge.In_out );
          (3, fun (_ : Tenv.t) _ -> Bytes.of_string "deepest");
        ]
      ~ocalls:[ (9, ocall_9); (10, ocall_10) ]
      ()
  in
  handle_ref := Some handle;
  let reply = Urts.ecall handle ~id:1 ~direction:Edge.Out () in
  Alcotest.(check string)
    "inner refusal typed, outer completed" "refused" (Bytes.to_string reply);
  Alcotest.(check int) "all TCS released" 2 (Urts.free_tcs_count handle);
  Urts.destroy handle

let test_code_identity_changes_measurement () =
  let p = Platform.create ~seed:3002L () in
  let make seed_name =
    let handle =
      Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
        ~signer:p.Platform.signer
        ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed = seed_name }
        ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
        ~ocalls:[]
    in
    let mr = Urts.mrenclave handle in
    Urts.destroy handle;
    mr
  in
  Alcotest.(check bool)
    "different code, different MRENCLAVE" false
    (Bytes.equal (make "version-1") (make "version-2"));
  Alcotest.(check bool)
    "same code, same MRENCLAVE" true
    (Bytes.equal (make "version-1") (make "version-1"))

let test_interrupt_guard () =
  let alarms = ref (-1) in
  let _, handle =
    fixture ~mode:Sgx_types.P
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              tenv.Tenv.arm_interrupt_guard ~window_cycles:5_000_000 ~threshold:20;
              (* Benign phase: timer-rate interrupts between real work. *)
              for _ = 1 to 10 do
                tenv.Tenv.compute 1_000_000;
                tenv.Tenv.interrupt_now ()
              done;
              let benign_alarms = tenv.Tenv.interrupt_alarms () in
              (* Attack phase: SGX-Step-style interrupt storm. *)
              for _ = 1 to 200 do
                tenv.Tenv.compute 500;
                tenv.Tenv.interrupt_now ()
              done;
              alarms := tenv.Tenv.interrupt_alarms ();
              Alcotest.(check int) "no alarm at benign rates" 0 benign_alarms;
              Bytes.empty );
        ]
      ~ocalls:[] ()
  in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Alcotest.(check bool)
    (Printf.sprintf "storm detected (%d alarms)" !alarms)
    true (!alarms >= 1);
  Urts.destroy handle

let test_interrupt_guard_p_only () =
  let _, handle =
    fixture ~mode:Sgx_types.GU
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              (try
                 tenv.Tenv.arm_interrupt_guard ~window_cycles:1000 ~threshold:1;
                 Alcotest.fail "GU must not arm the guard"
               with Monitor.Security_violation _ -> ());
              Bytes.empty );
        ]
      ~ocalls:[] ()
  in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Urts.destroy handle

let test_switchless_ocall () =
  let costs = ref (0, 0) in
  let _, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) input ->
              let r1, regular =
                Cycles.time tenv.Tenv.clock (fun () ->
                    tenv.Tenv.ocall ~id:7 ~data:input Edge.In_out)
              in
              let r2, switchless =
                Cycles.time tenv.Tenv.clock (fun () ->
                    tenv.Tenv.ocall_switchless ~id:7 ~data:input ())
              in
              Alcotest.(check string)
                "same result either way" (Bytes.to_string r1) (Bytes.to_string r2);
              costs := (regular, switchless);
              r2 );
        ]
      ~ocalls:[ (7, fun data -> Bytes.cat (Bytes.of_string ">") data) ]
      ()
  in
  let reply =
    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "io") ~direction:Edge.In_out ()
  in
  Alcotest.(check string) "reply" ">io" (Bytes.to_string reply);
  let regular, switchless = !costs in
  Alcotest.(check bool)
    (Printf.sprintf "switchless (%d) at least 2x cheaper than regular (%d)"
       switchless regular)
    true
    (switchless * 2 < regular);
  Alcotest.(check int) "both counted as ocalls" 2 (Urts.stats handle).Enclave.ocalls;
  Urts.destroy handle

let test_ocall_ring_semantics () =
  let p, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              let replies =
                tenv.Tenv.ocall_ring
                  ~reqs:
                    [
                      (7, Bytes.of_string "aa");
                      (8, Bytes.of_string "xy");
                      (7, Bytes.of_string "bb");
                    ]
                  ()
              in
              Bytes.of_string
                (String.concat "|" (List.map Bytes.to_string replies)) );
        ]
      ~ocalls:
        [
          (7, fun data -> Bytes.cat (Bytes.of_string ">") data);
          (8, fun data -> Bytes.cat data data);
        ]
      ()
  in
  let reply =
    Urts.ecall handle ~id:1 ~data:Bytes.empty ~direction:Edge.In_out ()
  in
  Alcotest.(check string)
    "replies in request order" ">aa|xyxy|>bb" (Bytes.to_string reply);
  let telemetry = Monitor.telemetry p.Platform.monitor in
  Alcotest.(check int)
    "one ring dispatch" 1
    (Telemetry.counter telemetry "sdk.ocall_ring");
  Alcotest.(check int)
    "three ringed ocalls" 3
    (Telemetry.counter telemetry "sdk.ocall_ringed");
  Alcotest.(check int)
    "all counted as ocalls" 3 (Urts.stats handle).Enclave.ocalls;
  Urts.destroy handle

let test_ocall_ring_errors () =
  let _, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              let too_many =
                List.init (Urts.max_batch + 1) (fun _ -> (7, Bytes.empty))
              in
              (try
                 ignore (tenv.Tenv.ocall_ring ~reqs:too_many ());
                 Alcotest.fail "oversized reply ring accepted"
               with Urts.Enclave_error _ -> ());
              (try
                 ignore (tenv.Tenv.ocall_ring ~reqs:[ (99, Bytes.empty) ] ());
                 Alcotest.fail "unknown ocall id accepted"
               with Urts.Enclave_error _ -> ());
              Alcotest.(check (list string))
                "empty ring" []
                (List.map Bytes.to_string (tenv.Tenv.ocall_ring ~reqs:[] ()));
              Bytes.of_string "ok" );
        ]
      ~ocalls:[ (7, fun data -> data) ]
      ()
  in
  Alcotest.(check string)
    "enclave survived the refusals" "ok"
    (Bytes.to_string
       (Urts.ecall handle ~id:1 ~data:Bytes.empty ~direction:Edge.In_out ()));
  Urts.destroy handle

let test_ocall_ring_amortizes () =
  (* The reply ring's reason to exist: K out-calls under one EEXIT +
     one batched ORET must beat K individual world switches by at
     least 2x at K = 8 (echo OCALL, pure transition cost). *)
  let costs = ref (0, 0) in
  let _, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              let reqs = List.init 8 (fun i -> (7, Bytes.make 4 (Char.chr (65 + i)))) in
              let _, ringed =
                Cycles.time tenv.Tenv.clock (fun () ->
                    tenv.Tenv.ocall_ring ~reqs ())
              in
              let _, sequential =
                Cycles.time tenv.Tenv.clock (fun () ->
                    List.iter
                      (fun (id, data) ->
                        ignore (tenv.Tenv.ocall ~id ~data Edge.In_out))
                      reqs)
              in
              costs := (ringed, sequential);
              Bytes.empty );
        ]
      ~ocalls:[ (7, fun data -> data) ]
      ()
  in
  ignore (Urts.ecall handle ~id:1 ~data:Bytes.empty ~direction:Edge.In_out ());
  let ringed, sequential = !costs in
  Alcotest.(check bool)
    (Printf.sprintf "ringed 8 (%d cycles) at least 2x cheaper than sequential (%d)"
       ringed sequential)
    true
    (2 * ringed <= sequential);
  Urts.destroy handle

let test_ring_frame_parsing () =
  (* The untrusted half hands the trusted half raw ring bytes through
     the shared ms region; every malformed shape must surface as the
     typed [Enclave_error], never a bare [Invalid_argument]. *)
  let reqs = [ (1, Bytes.of_string "hello"); (2, Bytes.empty) ] in
  let frame = Urts.frame_requests reqs in
  Alcotest.(check (list (pair int string)))
    "frame/parse inverse"
    [ (1, "hello"); (2, "") ]
    (List.map
       (fun (id, b) -> (id, Bytes.to_string b))
       (Urts.parse_frames ~what:"test" frame));
  let expect_typed name raw =
    try
      ignore (Urts.parse_frames ~what:"test" raw);
      Alcotest.fail (name ^ ": accepted")
    with
    | Urts.Enclave_error _ -> ()
    | Invalid_argument m ->
        Alcotest.fail (name ^ ": escaped as Invalid_argument " ^ m)
  in
  expect_typed "truncated header" (Bytes.sub frame 0 4);
  expect_typed "truncated slot" (Bytes.sub frame 0 (Bytes.length frame - 3));
  let negative_count = Bytes.copy frame in
  Bytes.set_int64_le negative_count 0 (-1L);
  expect_typed "negative count" negative_count;
  let huge_count = Bytes.copy frame in
  Bytes.set_int64_le huge_count 0 (Int64.of_int (Urts.max_batch + 1));
  expect_typed "count past max_batch" huge_count;
  let negative_len = Bytes.copy frame in
  Bytes.set_int64_le negative_len 16 (-5L);
  expect_typed "negative slot length" negative_len;
  (* The int-overflow regression: a near-max_int length word must be a
     typed refusal, not an escaped [Bytes.sub] failure. *)
  let huge_len = Bytes.copy frame in
  Bytes.set_int64_le huge_len 16 (Int64.of_int (max_int - 8));
  expect_typed "near-max_int slot length" huge_len;
  let oversized = Bytes.copy frame in
  Bytes.set_int64_le oversized 16 (Int64.of_int (Bytes.length frame));
  expect_typed "slot overruns frame" oversized

let test_oret_batch_unknown_ocall () =
  (* The drained reply-ring frame comes back through the shared ms
     region, so its OCALL ids are untrusted input: an id with no
     registered handler must surface as the typed [Enclave_error]
     refusal, never a bare [Not_found] out of the handler table. *)
  let _, handle = fixture ~ecalls:[] ~ocalls:[ (7, fun data -> data) ] () in
  let arg_off = Urts.ms_ocall_off handle in
  let frame = Urts.frame_requests [ (99, Bytes.of_string "boom") ] in
  Urts.ms_raw_write handle ~off:arg_off frame;
  (try
     ignore (Urts.oret_batch handle ~arg_off ~staged_len:(Bytes.length frame));
     Alcotest.fail "unregistered OCALL id accepted"
   with
  | Urts.Enclave_error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "typed refusal names the id: %s" msg)
        true
        (let needle = "unknown OCALL" in
         let n = String.length needle in
         let rec has i =
           i + n <= String.length msg
           && (String.sub msg i n = needle || has (i + 1))
         in
         has 0)
  | Not_found -> Alcotest.fail "escaped as bare Not_found");
  (* A registered id through the same direct path still round-trips. *)
  let ok = Urts.frame_requests [ (7, Bytes.of_string "echo") ] in
  Urts.ms_raw_write handle ~off:arg_off ok;
  let len = Urts.oret_batch handle ~arg_off ~staged_len:(Bytes.length ok) in
  Alcotest.(check bool) "reply frame written back" true (len > 0);
  Urts.destroy handle

let test_local_attestation () =
  (* Enclave B proves its identity to enclave A on the same platform:
     B produces an EREPORT binding a channel nonce, the untrusted app
     relays it, A verifies it in-enclave via EVERIFYREPORT and checks
     B's MRENCLAVE against its policy. *)
  let p = Platform.create ~seed:3005L () in
  let make ~code_seed ~ecalls =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed }
      ~ecalls ~ocalls:[]
  in
  let b =
    make ~code_seed:"peer-B"
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) nonce ->
              let report = tenv.Tenv.report ~report_data:nonce in
              (* serialize: body fields the verifier needs + mac *)
              Bytes.concat (Bytes.of_string "|")
                [ report.Sgx_types.mrenclave; report.Sgx_types.mrsigner;
                  report.Sgx_types.report_data; report.Sgx_types.key_id;
                  report.Sgx_types.mac ] );
        ]
  in
  let b_mrenclave = Urts.mrenclave b in
  let verdict = ref "" in
  let a =
    make ~code_seed:"peer-A"
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) wire ->
              (match Bytes.split_on_char '|' wire with
              | [ mrenclave; mrsigner; report_data; key_id; mac ] ->
                  let report =
                    {
                      Sgx_types.mrenclave;
                      mrsigner;
                      attributes =
                        { Sgx_types.debug = false; mode = Sgx_types.GU; xfrm = 3 };
                      isv_prod_id = 1;
                      isv_svn = 1;
                      report_data;
                      key_id;
                      mac;
                    }
                  in
                  if not (tenv.Tenv.verify_report report) then
                    verdict := "bad-mac"
                  else if not (Bytes.equal mrenclave b_mrenclave) then
                    verdict := "wrong-peer"
                  else verdict := "trusted"
              | _ -> verdict := "malformed");
              Bytes.empty );
        ]
  in
  let nonce = Bytes.make 64 'n' in
  let wire = Urts.ecall b ~id:1 ~data:nonce ~direction:Edge.In_out () in
  ignore (Urts.ecall a ~id:1 ~data:wire ~direction:Edge.In_out ());
  Alcotest.(check string) "B accepted" "trusted" !verdict;
  (* A forged report (flipped MAC byte) must be rejected in-enclave. *)
  let forged = Bytes.copy wire in
  Bytes.set forged (Bytes.length forged - 1)
    (Char.chr (Char.code (Bytes.get forged (Bytes.length forged - 1)) lxor 1));
  ignore (Urts.ecall a ~id:1 ~data:forged ~direction:Edge.In_out ());
  Alcotest.(check string) "forgery rejected" "bad-mac" !verdict;
  Urts.destroy a;
  Urts.destroy b

let test_versioned_sealing_rollback () =
  (* Rollback protection: after the state is re-sealed, the old blob (a
     valid ciphertext the operator kept around) must be refused. *)
  let _, handle =
    fixture
      ~ecalls:
        [
          (1, fun (tenv : Tenv.t) data -> tenv.Tenv.seal_versioned data);
          ( 2,
            fun (tenv : Tenv.t) blob ->
              match tenv.Tenv.unseal_versioned blob with
              | data -> Bytes.cat (Bytes.of_string "ok:") data
              | exception Failure m -> Bytes.of_string ("refused:" ^ m) );
        ]
      ~ocalls:[] ()
  in
  let v1 =
    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "state-1") ~direction:Edge.In_out ()
  in
  Alcotest.(check string)
    "current blob unseals" "ok:state-1"
    (Bytes.to_string (Urts.ecall handle ~id:2 ~data:v1 ~direction:Edge.In_out ()));
  let v2 =
    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "state-2") ~direction:Edge.In_out ()
  in
  Alcotest.(check string)
    "rollback to v1 refused" "refused:stale sealed data"
    (Bytes.to_string (Urts.ecall handle ~id:2 ~data:v1 ~direction:Edge.In_out ()));
  Alcotest.(check string)
    "v2 still unseals" "ok:state-2"
    (Bytes.to_string (Urts.ecall handle ~id:2 ~data:v2 ~direction:Edge.In_out ()));
  Urts.destroy handle

let expect_enclave_error ~substring f =
  try
    ignore (f ());
    Alcotest.fail
      (Printf.sprintf "expected Enclave_error mentioning %S" substring)
  with Urts.Enclave_error m ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" m substring)
      true (contains m substring)

let test_ocall_reply_overflow () =
  (* The OCALL request is bounds-checked against the ocalloc arena, but
     the reply reuses the slot and may be larger: an untrusted handler
     returning more than the arena holds must be refused, not let run off
     the end of the pinned buffer. *)
  let _, handle =
    fixture
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) input ->
              tenv.Tenv.ocall ~id:7 ~data:input Edge.In_out );
          ( 2,
            fun (tenv : Tenv.t) input ->
              tenv.Tenv.ocall_switchless ~id:7 ~data:input () );
        ]
        (* arena is the top quarter of the 256 KiB buffer = 64 KiB; the
           handler inflates any request far beyond it *)
      ~ocalls:[ (7, fun _ -> Bytes.make 66_000 'r') ]
      ()
  in
  expect_enclave_error ~substring:"overflows the ocalloc arena" (fun () ->
      Urts.ecall handle ~id:1 ~data:(Bytes.of_string "tiny request")
        ~direction:Edge.In_out ());
  expect_enclave_error ~substring:"overflows the ocalloc arena" (fun () ->
      Urts.ecall handle ~id:2 ~data:(Bytes.of_string "tiny request")
        ~direction:Edge.In_out ());
  Urts.destroy handle

let test_ocall_reply_larger_than_request_ok () =
  (* Replies bigger than the request are fine as long as they fit. *)
  let _, handle =
    fixture
      ~ecalls:
        [ (1, fun (tenv : Tenv.t) input -> tenv.Tenv.ocall ~id:7 ~data:input Edge.In_out) ]
      ~ocalls:[ (7, fun _ -> Bytes.make 4096 'R') ]
      ()
  in
  let reply =
    Urts.ecall handle ~id:1 ~data:(Bytes.of_string "x") ~direction:Edge.In_out ()
  in
  Alcotest.(check int) "inflated reply intact" 4096 (Bytes.length reply);
  Alcotest.(check bool) "contents intact" true
    (Bytes.for_all (fun c -> c = 'R') reply);
  Urts.destroy handle

let test_ecall_output_overflow () =
  (* ECALL results own [1/2, 3/4) of the marshalling buffer (64 KiB by
     default).  A larger result used to be written straight through —
     still inside the buffer, so R-2 never fired — silently corrupting
     the ocalloc arena. *)
  let _, handle =
    fixture
      ~ecalls:
        [
          (1, fun (_ : Tenv.t) _ -> Bytes.make 66_000 'o');
          (2, fun (_ : Tenv.t) input -> input);
        ]
      ~ocalls:[] ()
  in
  expect_enclave_error ~substring:"exceeds the marshalling output region"
    (fun () -> Urts.ecall handle ~id:1 ~direction:Edge.Out ());
  (* The failure path must have exited the enclave cleanly: a normal
     ECALL on the same handle still works. *)
  let reply =
    Urts.ecall handle ~id:2 ~data:(Bytes.of_string "still alive")
      ~direction:Edge.In_out ()
  in
  Alcotest.(check string) "enclave usable after refusal" "still alive"
    (Bytes.to_string reply);
  Urts.destroy handle

let test_ecall_input_overflow () =
  (* Symmetric check on the input leg: inputs own [0, 1/2). *)
  let _, handle =
    fixture ~ecalls:[ (1, fun (_ : Tenv.t) _ -> Bytes.empty) ] ~ocalls:[] ()
  in
  expect_enclave_error ~substring:"exceeds the marshalling input region"
    (fun () ->
      Urts.ecall handle ~id:1
        ~data:(Bytes.make 140_000 'i')
        ~direction:Edge.In ());
  Urts.destroy handle

let suite =
  [
    Alcotest.test_case "versioned sealing (anti-rollback)" `Quick
      test_versioned_sealing_rollback;
    Alcotest.test_case "OCALL reply overflow refused" `Quick
      test_ocall_reply_overflow;
    Alcotest.test_case "OCALL reply larger than request" `Quick
      test_ocall_reply_larger_than_request_ok;
    Alcotest.test_case "ECALL output overflow refused" `Quick
      test_ecall_output_overflow;
    Alcotest.test_case "ECALL input overflow refused" `Quick
      test_ecall_input_overflow;
    Alcotest.test_case "local attestation" `Quick test_local_attestation;
    Alcotest.test_case "switchless ocall" `Quick test_switchless_ocall;
    Alcotest.test_case "ocall ring semantics" `Quick test_ocall_ring_semantics;
    Alcotest.test_case "ocall ring errors" `Quick test_ocall_ring_errors;
    Alcotest.test_case "ocall ring amortizes" `Quick test_ocall_ring_amortizes;
    Alcotest.test_case "ring frame parsing" `Quick test_ring_frame_parsing;
    Alcotest.test_case "oret_batch unknown OCALL typed" `Quick
      test_oret_batch_unknown_ocall;
    Alcotest.test_case "interrupt-frequency guard" `Quick test_interrupt_guard;
    Alcotest.test_case "interrupt guard is P-only" `Quick
      test_interrupt_guard_p_only;
    Alcotest.test_case "ecall roundtrip" `Quick test_ecall_roundtrip;
    Alcotest.test_case "ocall roundtrip" `Quick test_ocall_roundtrip;
    Alcotest.test_case "heap + memory" `Quick test_heap_and_memory;
    Alcotest.test_case "sealing" `Quick test_sealing;
    Alcotest.test_case "sealing bound to MRENCLAVE" `Quick
      test_sealing_bound_to_mrenclave;
    Alcotest.test_case "exceptions two-phase (GU)" `Quick test_exceptions_two_phase;
    Alcotest.test_case "exceptions in-enclave (P)" `Quick test_exceptions_in_enclave;
    Alcotest.test_case "GC page permissions" `Quick test_gc_page_permissions;
    Alcotest.test_case "ms window (user_check)" `Quick test_ms_window_user_check;
    Alcotest.test_case "report/quote API" `Quick test_report_quote_api;
    Alcotest.test_case "TCS exhaustion" `Quick test_no_free_tcs;
    Alcotest.test_case "ms split page-aligned" `Quick test_ms_split_page_aligned;
    Alcotest.test_case "ms_bytes validated" `Quick test_ms_bytes_validated;
    Alcotest.test_case "nested ECALL in OCALL" `Quick test_nested_ecall_in_ocall;
    Alcotest.test_case "nested ECALL exhaustion typed" `Quick
      test_nested_ecall_exhaustion_is_typed;
    Alcotest.test_case "code identity in measurement" `Quick
      test_code_identity_changes_measurement;
  ]
