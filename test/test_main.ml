(* Test entry point: one alcotest section per subsystem. *)

let () =
  Alcotest.run "hyperenclave"
    [
      ("hw", Test_hw.suite);
      ("crypto", Test_crypto.suite);
      ("tpm", Test_tpm.suite);
      ("monitor", Test_monitor.suite);
      ("obs", Test_obs.suite);
      ("os", Test_os.suite);
      ("sdk", Test_sdk.suite);
      ("sched", Test_sched.suite);
      ("libos", Test_libos.suite);
      ("edl", Test_edl.suite);
      ("sgx", Test_sgx.suite);
      ("attestation", Test_attestation.suite);
      ("tee", Test_tee.suite);
      ("backend_api", Test_backend_api.suite);
      ("serve", Test_serve.suite);
      ("services", Test_services.suite);
      ("cluster", Test_cluster.suite);
      ("workloads", Test_workloads.suite);
      ("golden", Test_golden.suite);
      ("fuzz", Test_fuzz.suite);
      ("fault", Test_fault.suite);
      ("chaos", Test_chaos.suite);
      ("mc", Test_mc.suite);
      ("attacks", Test_attacks.suite);
    ]
