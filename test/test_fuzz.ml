(* Fuzz/property batch: the surfaces that consume untrusted bytes
   (protocol parsers, the quote wire format, the SQL front end, the libOS
   fd layer) must be total — reject garbage, never crash — and the
   encode/parse pairs must be inverses. *)

open Hyperenclave
module W = Hyperenclave.Workloads

let never_crashes name f =
  QCheck.Test.make ~name ~count:300 QCheck.string (fun s ->
      match f s with
      | _ -> true
      | exception exn ->
          QCheck.Test.fail_reportf "input %S raised %s" s
            (Printexc.to_string exn))

(* --- generators ------------------------------------------------------------- *)

let resp_word =
  QCheck.Gen.(
    string_size ~gen:(map Char.chr (int_range 33 126)) (int_range 1 12))

let resp_command_gen = QCheck.Gen.(list_size (int_range 1 5) resp_word)

(* --- RESP -------------------------------------------------------------------- *)

let resp_roundtrip =
  QCheck.Test.make ~name:"RESP encode/parse inverse" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 6) resp_command_gen))
    (fun commands ->
      let wire =
        Bytes.to_string
          (Bytes.concat Bytes.empty (List.map W.Resp_kv.encode_command commands))
      in
      match W.Resp_kv.parse_pipeline wire with
      | Result.Ok parsed -> parsed = commands
      | Result.Error _ -> false)

let resp_total = never_crashes "RESP parser total on garbage" W.Resp_kv.parse_resp

let resp_prefix_rejected =
  (* Any strict prefix of a valid encoding must be rejected cleanly. *)
  QCheck.Test.make ~name:"RESP truncation rejected" ~count:200
    (QCheck.make resp_command_gen)
    (fun command ->
      let wire = Bytes.to_string (W.Resp_kv.encode_command command) in
      let ok = ref true in
      for len = 1 to String.length wire - 1 do
        match W.Resp_kv.parse_resp (String.sub wire 0 len) with
        | Result.Error _ -> ()
        | Result.Ok parsed -> if parsed = command then ok := false
        | exception _ -> ok := false
      done;
      !ok)

(* --- HTTP -------------------------------------------------------------------- *)

let http_total = never_crashes "HTTP parser total on garbage" W.Httpd.parse_request

let http_valid_requests =
  QCheck.Test.make ~name:"HTTP parser accepts well-formed requests" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair
           (string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 20))
           (list_size (int_range 0 4)
              (pair
                 (string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 8))
                 (string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 8))))))
    (fun (path, headers) ->
      let raw =
        Printf.sprintf "GET /%s HTTP/1.1\n%s" path
          (String.concat ""
             (List.map (fun (k, v) -> Printf.sprintf "%s: %s\n" k v) headers))
      in
      match W.Httpd.parse_request raw with
      | Result.Ok r ->
          r.W.Httpd.meth = "GET"
          && r.W.Httpd.path = "/" ^ path
          && List.length r.W.Httpd.headers = List.length headers
      | Result.Error _ -> false)

(* --- mini-SQL ------------------------------------------------------------------ *)

let sql_total =
  QCheck.Test.make ~name:"SQL engine total on garbage" ~count:300 QCheck.string
    (fun s ->
      let e = W.Kvdb.Engine.create () in
      match W.Kvdb.Engine.exec e s with
      | Result.Ok _ | Result.Error _ -> true
      | exception _ -> false)

let sql_store_consistency =
  QCheck.Test.make ~name:"SQL insert/update/select agree with a model" ~count:80
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 60) (pair (int_bound 20) (int_bound 999))))
    (fun ops ->
      let e = W.Kvdb.Engine.create () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (key, v) ->
          let value = Printf.sprintf "v%d" v in
          let stmt =
            if Hashtbl.mem model key && v mod 2 = 0 then
              Printf.sprintf "UPDATE kv SET v = '%s' WHERE k = %d" value key
            else Printf.sprintf "INSERT INTO kv VALUES (%d, '%s')" key value
          in
          (match W.Kvdb.Engine.exec e stmt with
          | Result.Ok _ -> Hashtbl.replace model key value
          | Result.Error _ -> ());
          match
            ( W.Kvdb.Engine.exec e (Printf.sprintf "SELECT v FROM kv WHERE k = %d" key),
              Hashtbl.find_opt model key )
          with
          | Result.Ok got, Some expected -> got = expected
          | Result.Error _, None -> true
          | Result.Ok _, None | Result.Error _, Some _ -> false)
        ops)

(* --- quote wire format ----------------------------------------------------------- *)

let wire_total =
  QCheck.Test.make ~name:"quote decoder total on garbage" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s ->
      match Quote_wire.decode (Bytes.of_string s) with
      | Result.Ok _ | Result.Error _ -> true
      | exception _ -> false)

(* --- vCPU SSA frames --------------------------------------------------------------- *)

let vcpu_roundtrip =
  QCheck.Test.make ~name:"vCPU SSA serialize/deserialize inverse" ~count:200
    QCheck.(int_bound 100_000)
    (fun seed ->
      (* Arbitrary in-enclave execution state, as an AEX would spill it. *)
      let rng = Rng.create ~seed:(Int64.of_int (77_000 + seed)) in
      let regs = Vcpu.fresh ~entry:0x1000 in
      Vcpu.scramble rng regs;
      let frame = Vcpu.serialize regs in
      if Bytes.length frame <> Vcpu.ssa_frame_bytes then
        QCheck.Test.fail_reportf "frame is %d bytes, expected %d"
          (Bytes.length frame) Vcpu.ssa_frame_bytes
      else
        Vcpu.equal regs (Vcpu.deserialize frame)
        || QCheck.Test.fail_reportf "round-trip lost register state (seed %d)"
             seed)

let vcpu_malformed_rejected =
  QCheck.Test.make ~name:"vCPU malformed SSA frame rejected" ~count:200
    QCheck.(int_bound 400)
    (fun len ->
      if len = Vcpu.ssa_frame_bytes then true
      else
        match Vcpu.deserialize (Bytes.make len '\x7f') with
        | _ -> QCheck.Test.fail_reportf "frame of %d bytes accepted" len
        | exception Invalid_argument _ -> true)

(* --- quote wire format: inverse + truncation --------------------------------------- *)

(* One real platform+enclave shared by the quote properties; the
   generator varies the report data and nonce, which reach every
   length-framed field of the wire format. *)
let quote_fixture =
  lazy
    (let p = Platform.create ~seed:8100L () in
     Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
       ~rng:p.Platform.rng ~signer:p.Platform.signer
       ~config:(Urts.default_config Sgx_types.GU)
       ~ecalls:[ (1, fun _tenv input -> input) ]
       ~ocalls:[])

let quote_wire_roundtrip =
  QCheck.Test.make ~name:"quote wire encode/decode inverse" ~count:40
    (QCheck.make
       QCheck.Gen.(
         pair
           (string_size (int_range 0 32))
           (string_size (int_range 1 24))))
    (fun (rd, nonce) ->
      let handle = Lazy.force quote_fixture in
      let quote =
        Urts.gen_quote handle ~report_data:(Bytes.of_string rd)
          ~nonce:(Bytes.of_string nonce)
      in
      match Quote_wire.decode (Quote_wire.encode quote) with
      | Result.Error m -> QCheck.Test.fail_reportf "decode failed: %s" m
      | Result.Ok decoded ->
          decoded = quote
          || QCheck.Test.fail_reportf
               "decode . encode <> id (report_data=%S nonce=%S)" rd nonce)

let quote_wire_truncation =
  QCheck.Test.make ~name:"quote wire truncation rejected" ~count:10
    QCheck.(int_bound 10_000)
    (fun salt ->
      let handle = Lazy.force quote_fixture in
      let quote =
        Urts.gen_quote handle
          ~report_data:(Bytes.of_string (string_of_int salt))
          ~nonce:(Bytes.of_string "trunc")
      in
      let encoded = Quote_wire.encode quote in
      let ok = ref true in
      for len = 0 to Bytes.length encoded - 1 do
        match Quote_wire.decode (Bytes.sub encoded 0 len) with
        | Result.Error _ -> ()
        | Result.Ok _ ->
            Printf.eprintf "prefix of %d/%d bytes accepted\n" len
              (Bytes.length encoded);
            ok := false
        | exception exn ->
            Printf.eprintf "prefix of %d bytes raised %s\n" len
              (Printexc.to_string exn);
            ok := false
      done;
      !ok)

(* --- libOS fd layer ---------------------------------------------------------------- *)

let libos_fd_invariants =
  QCheck.Test.make ~name:"libOS fd table consistent under random op storms"
    ~count:20
    (QCheck.make
       QCheck.Gen.(list_size (int_range 5 40) (pair (int_bound 4) (int_bound 3))))
    (fun ops ->
      let p = Platform.create ~seed:7100L () in
      let outcome = ref true in
      let handle =
        Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
          ~rng:p.Platform.rng ~signer:p.Platform.signer
          ~config:(Urts.default_config Sgx_types.HU)
          ~ecalls:
            [
              ( 1,
                fun tenv _ ->
                  let os = Libos.create tenv () in
                  let fds = ref [] in
                  List.iter
                    (fun (op, which) ->
                      match op with
                      | 0 ->
                          let path = Printf.sprintf "/f%d" which in
                          fds := Libos.openf os ~path [ Libos.O_creat; Libos.O_rdwr ] :: !fds
                      | 1 -> (
                          match !fds with
                          | fd :: rest ->
                              Libos.close os fd;
                              fds := rest
                          | [] -> ())
                      | 2 -> (
                          match !fds with
                          | fd :: _ -> ignore (Libos.write os fd (Bytes.of_string "data"))
                          | [] -> ())
                      | 3 -> (
                          match !fds with
                          | fd :: _ ->
                              ignore (Libos.lseek os fd ~pos:0);
                              ignore (Libos.read os fd ~len:2)
                          | [] -> ())
                      | 4 | _ -> (
                          (* double close must raise, not corrupt *)
                          match !fds with
                          | fd :: rest ->
                              Libos.close os fd;
                              fds := rest;
                              (match Libos.close os fd with
                              | () -> outcome := false
                              | exception Libos.Bad_fd _ -> ())
                          | [] -> ()))
                    ops;
                  if Libos.open_fds os <> List.length !fds then outcome := false;
                  Bytes.empty );
            ]
          ~ocalls:[]
      in
      ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
      Urts.destroy handle;
      !outcome)

(* --- switchless ring frames: inverse + corruption --------------------------------- *)

(* The ring frames cross the shared ms region, so the parser consumes
   attacker-reachable bytes: encode/parse must be inverses, and every
   truncation or corrupted length word must surface as the typed
   [Urts.Enclave_error] — never a bare [Invalid_argument] from
   [Bytes.sub]. *)
let ring_frame_gen =
  QCheck.Gen.(
    list_size (int_range 0 16)
      (pair (int_range 0 1000) (string_size (int_range 0 64))))

let ring_frame_roundtrip =
  QCheck.Test.make ~name:"ring frame encode/parse inverse" ~count:200
    (QCheck.make ring_frame_gen) (fun reqs ->
      let reqs = List.map (fun (id, s) -> (id, Bytes.of_string s)) reqs in
      let parsed =
        Urts.parse_frames ~what:"fuzz" (Urts.frame_requests reqs)
      in
      List.map (fun (id, b) -> (id, Bytes.to_string b)) parsed
      = List.map (fun (id, b) -> (id, Bytes.to_string b)) reqs)

let ring_frame_truncation =
  QCheck.Test.make ~name:"ring frame truncation rejected typed" ~count:50
    (QCheck.make ring_frame_gen) (fun reqs ->
      let reqs = List.map (fun (id, s) -> (id, Bytes.of_string s)) reqs in
      let frame = Urts.frame_requests reqs in
      let ok = ref true in
      for len = 0 to Bytes.length frame - 1 do
        match Urts.parse_frames ~what:"fuzz" (Bytes.sub frame 0 len) with
        | _ -> () (* a shorter prefix can still be a valid frame *)
        | exception Urts.Enclave_error _ -> ()
        | exception exn ->
            Printf.eprintf "prefix of %d/%d bytes raised %s\n" len
              (Bytes.length frame) (Printexc.to_string exn);
            ok := false
      done;
      !ok)

let ring_frame_corrupt_length =
  QCheck.Test.make ~name:"ring frame corrupt length word rejected typed"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair ring_frame_gen (oneof [ int_range (-1000) (-1); int_range 65 max_int ])))
    (fun (reqs, bad_len) ->
      let reqs =
        match reqs with
        | [] -> [ (1, Bytes.of_string "x") ]
        | l -> List.map (fun (id, s) -> (id, Bytes.of_string s)) l
      in
      let frame = Urts.frame_requests reqs in
      Bytes.set_int64_le frame 16 (Int64.of_int bad_len);
      match Urts.parse_frames ~what:"fuzz" frame with
      | _ ->
          (* Only lengths that still fit the frame may parse. *)
          bad_len >= 0 && bad_len <= Bytes.length frame - 32
      | exception Urts.Enclave_error _ -> true
      | exception exn ->
          QCheck.Test.fail_reportf "length %d raised %s" bad_len
            (Printexc.to_string exn))

(* --- determinism -------------------------------------------------------------------- *)

let platform_cycle_determinism =
  QCheck.Test.make ~name:"identical seeds give identical simulated cycles"
    ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      let run () =
        let p = Platform.create ~seed:(Int64.of_int (9000 + seed)) () in
        let handle =
          Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
            ~rng:p.Platform.rng ~signer:p.Platform.signer
            ~config:(Urts.default_config Sgx_types.GU)
            ~ecalls:[ (1, fun tenv input -> tenv.Tenv.seal input) ]
            ~ocalls:[]
        in
        ignore
          (Urts.ecall handle ~id:1 ~data:(Bytes.of_string "d")
             ~direction:Edge.In_out ());
        let total = Cycles.now p.Platform.clock in
        Urts.destroy handle;
        total
      in
      run () = run ())

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      resp_roundtrip;
      resp_total;
      resp_prefix_rejected;
      http_total;
      http_valid_requests;
      sql_total;
      sql_store_consistency;
      wire_total;
      vcpu_roundtrip;
      vcpu_malformed_rejected;
      quote_wire_roundtrip;
      quote_wire_truncation;
      ring_frame_roundtrip;
      ring_frame_truncation;
      ring_frame_corrupt_length;
      libos_fd_invariants;
      platform_cycle_determinism;
    ]
