(* The SMP enclave scheduler (lib/sched) and the switchless batched call
   ring: determinism, core scaling, work-stealing invariance, preemption
   with invariant checks, and the ring's single-switch amortization. *)

open Hyperenclave

let telemetry p = Monitor.telemetry p.Platform.monitor

(* An enclave whose single ECALL burns a fixed compute budget and echoes
   its input — the unit of schedulable work.  [code_seed] varies per
   enclave so each has its own identity (and MRENCLAVE). *)
let make_enclave p ~seed_name ~burn =
  Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
    ~signer:p.Platform.signer
    ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed = seed_name }
    ~ecalls:
      [
        ( 1,
          fun (tenv : Tenv.t) input ->
            tenv.Tenv.compute burn;
            input );
      ]
    ~ocalls:[]

let requests ~tag n =
  List.init n (fun i -> (1, Bytes.of_string (Printf.sprintf "%s-%d" tag i)))

(* --- batched call ring ----------------------------------------------------- *)

let test_batch_semantics () =
  let p = Platform.create ~seed:4100L () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:
        [
          ( 1,
            fun (_ : Tenv.t) input ->
              Bytes.of_string (String.uppercase_ascii (Bytes.to_string input)) );
          (2, fun (_ : Tenv.t) input -> Bytes.cat input input);
        ]
      ~ocalls:[]
  in
  let replies =
    Urts.ecall_batch handle
      ~reqs:
        [
          (1, Bytes.of_string "aa");
          (2, Bytes.of_string "xy");
          (1, Bytes.of_string "bb");
        ]
      ()
  in
  Alcotest.(check (list string))
    "replies in request order" [ "AA"; "xyxy"; "BB" ]
    (List.map Bytes.to_string replies);
  Alcotest.(check int)
    "one world switch for the whole batch" 3
    (Telemetry.counter (telemetry p) "sdk.ecall_batched");
  Alcotest.(check (list string))
    "empty batch" []
    (List.map Bytes.to_string (Urts.ecall_batch handle ~reqs:[] ()));
  (* Oversized batches and unknown ids are typed refusals. *)
  let too_many = List.init (Urts.max_batch + 1) (fun _ -> (1, Bytes.empty)) in
  (try
     ignore (Urts.ecall_batch handle ~reqs:too_many ());
     Alcotest.fail "oversized batch accepted"
   with Urts.Enclave_error _ -> ());
  (try
     ignore (Urts.ecall_batch handle ~reqs:[ (99, Bytes.empty) ] ());
     Alcotest.fail "unknown id accepted"
   with Urts.Enclave_error _ -> ());
  Urts.destroy handle

let test_batch_amortizes_transition () =
  let p = Platform.create ~seed:4101L () in
  let handle = make_enclave p ~seed_name:"batch-amortize" ~burn:0 in
  let reqs = requests ~tag:"r" 8 in
  let clock = p.Platform.clock in
  let (_ : bytes list), batched =
    Cycles.time clock (fun () -> Urts.ecall_batch handle ~reqs ())
  in
  let (_ : unit), unbatched =
    Cycles.time clock (fun () ->
        List.iter
          (fun (id, data) ->
            ignore (Urts.ecall handle ~id ~data ~direction:Edge.In_out ()))
          reqs)
  in
  (* Acceptance bar: at K = 8 the amortized transition cost of a batched
     call beats unbatched by at least 2x. *)
  Alcotest.(check bool)
    (Printf.sprintf "batched 8 (% d cycles) at least 2x cheaper than unbatched (%d)"
       batched unbatched)
    true
    (2 * batched <= unbatched);
  Urts.destroy handle

(* --- scheduler ------------------------------------------------------------- *)

type run_result = {
  stats : Sched.stats;
  sched_counters : (string * int) list;
  per_core_cycles : int list;
}

(* Build a fresh platform with [enclaves] jobs of [reqs_per_job] requests
   each and run them through the scheduler.  Everything is derived from
   [seed] and the config, so two identical calls must be bit-identical. *)
let run_workload ?(seed = 4200L) ?(enclaves = 4) ?(reqs_per_job = 10)
    ?(burn = 15_000) ?on_preempt ?(submit_core = None) config =
  let p = Platform.create ~seed () in
  let handles =
    List.init enclaves (fun i ->
        make_enclave p ~seed_name:(Printf.sprintf "sched-enclave-%d" i) ~burn)
  in
  let sched =
    Sched.create ?on_preempt ~shared_clock:p.Platform.clock
      ~telemetry:(telemetry p) config
  in
  List.iteri
    (fun i handle ->
      Sched.submit sched ?core:submit_core ~urts:handle
        (requests ~tag:(Printf.sprintf "job%d" i) reqs_per_job))
    handles;
  let stats = Sched.run sched in
  let result =
    {
      stats;
      sched_counters = Telemetry.counters_with_prefix (telemetry p) "sched.";
      per_core_cycles =
        Array.to_list
          (Array.map (fun (c : Sched.core_stats) -> c.Sched.cycles) stats.Sched.per_core);
    }
  in
  List.iter Urts.destroy handles;
  result

let small_quantum =
  { Sched.default_config with Sched.cores = 2; quantum = 40_000; batch = 1 }

let test_determinism () =
  let a = run_workload small_quantum in
  let b = run_workload small_quantum in
  Alcotest.(check (list (pair string int)))
    "telemetry bit-identical" a.sched_counters b.sched_counters;
  Alcotest.(check (list int))
    "per-core cycle totals bit-identical" a.per_core_cycles b.per_core_cycles;
  Alcotest.(check int) "makespan identical" a.stats.Sched.makespan b.stats.Sched.makespan;
  Alcotest.(check int) "steals identical" a.stats.Sched.steals b.stats.Sched.steals;
  Alcotest.(check int)
    "all requests served" (4 * 10) a.stats.Sched.total_requests;
  (* The small quantum actually preempted something. *)
  Alcotest.(check bool)
    "preemptions occurred" true
    (a.stats.Sched.preempts + a.stats.Sched.aex_preempts > 0)

let test_core_scaling () =
  let run cores =
    run_workload { small_quantum with Sched.cores; quantum = 400_000 }
  in
  let one = run 1 and two = run 2 and four = run 4 in
  Alcotest.(check int) "1-core serves all" 40 one.stats.Sched.total_requests;
  Alcotest.(check int) "4-core serves all" 40 four.stats.Sched.total_requests;
  let speedup = float_of_int one.stats.Sched.makespan /. float_of_int two.stats.Sched.makespan in
  Alcotest.(check bool)
    (Printf.sprintf "2 cores at least 1.6x faster (got %.2fx)" speedup)
    true (speedup >= 1.6);
  Alcotest.(check bool)
    "4 cores no slower than 2" true
    (four.stats.Sched.makespan <= two.stats.Sched.makespan)

let test_work_stealing_invariance () =
  (* All jobs land on core 0; a huge quantum removes preemption from the
     picture, so the only scheduling freedom left is stealing.  Work
     performed (sum of busy cycles) must not depend on it. *)
  let base =
    { Sched.default_config with Sched.cores = 2; quantum = 100_000_000 }
  in
  let stealing =
    run_workload ~submit_core:(Some 0) { base with Sched.work_stealing = true }
  in
  let serial =
    run_workload ~submit_core:(Some 0) { base with Sched.work_stealing = false }
  in
  let busy_sum r =
    Array.fold_left
      (fun acc (c : Sched.core_stats) -> acc + c.Sched.busy)
      0 r.stats.Sched.per_core
  in
  Alcotest.(check bool) "stealing happened" true (stealing.stats.Sched.steals > 0);
  Alcotest.(check int)
    "both serve every request" serial.stats.Sched.total_requests
    stealing.stats.Sched.total_requests;
  Alcotest.(check int)
    "cross-core busy totals invariant under stealing" (busy_sum serial)
    (busy_sum stealing);
  Alcotest.(check bool)
    "stealing spread work to core 1" true
    (stealing.stats.Sched.per_core.(1).Sched.busy > 0);
  (* Without stealing, core 1 never ran anything. *)
  Alcotest.(check int)
    "serial run kept core 1 idle" 0 serial.stats.Sched.per_core.(1).Sched.busy

let test_batched_scheduler_run () =
  let unbatched = run_workload { small_quantum with Sched.quantum = 400_000 } in
  let batched =
    run_workload { small_quantum with Sched.quantum = 400_000; batch = 8 }
  in
  Alcotest.(check int)
    "batched serves every request" unbatched.stats.Sched.total_requests
    batched.stats.Sched.total_requests;
  Alcotest.(check bool)
    "batching reduces makespan" true
    (batched.stats.Sched.makespan < unbatched.stats.Sched.makespan)

(* --- 2-enclave / 2-core chaos with invariant checks ----------------------- *)

let test_chaos_preemption_invariants () =
  let seeds = List.init 12 (fun i -> Int64.of_int (5000 + (37 * i))) in
  List.iter
    (fun seed ->
      let p = Platform.create ~seed () in
      let plan = Fault.plan_of_seed ~faults:2 seed in
      let checked = ref 0 in
      let on_preempt ~core_id:_ =
        let findings = Invariants.check p.Platform.monitor in
        if findings <> [] then
          Alcotest.fail
            (Printf.sprintf
               "seed %Ld (plan %s): invariant violation at preemption: %s" seed
               (Fault.plan_to_string plan)
               (Invariants.summary findings));
        incr checked
      in
      let handles =
        List.init 2 (fun i ->
            make_enclave p
              ~seed_name:(Printf.sprintf "chaos-sched-%d" i)
              ~burn:30_000)
      in
      let sched =
        Sched.create ~on_preempt ~shared_clock:p.Platform.clock
          ~telemetry:(telemetry p)
          {
            Sched.default_config with
            Sched.cores = 2;
            quantum = 25_000;
            drop_on_error = true;
          }
      in
      List.iteri
        (fun i handle ->
          Sched.submit sched ~urts:handle
            (requests ~tag:(Printf.sprintf "chaos%d" i) 6))
        handles;
      Fault.install ~telemetry:(telemetry p) plan;
      let stats =
        try Sched.run sched
        with exn ->
          Fault.clear ();
          Alcotest.fail
            (Printf.sprintf "seed %Ld (plan %s): scheduler aborted: %s" seed
               (Fault.plan_to_string plan) (Printexc.to_string exn))
      in
      Fault.clear ();
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: every request accounted for" seed)
        true
        (stats.Sched.total_requests + stats.Sched.failed_requests = 12);
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: invariants checked at preemptions" seed)
        true
        (!checked > 0 || stats.Sched.preempts + stats.Sched.aex_preempts = 0);
      let findings = Invariants.check p.Platform.monitor in
      if findings <> [] then
        Alcotest.fail
          (Printf.sprintf "seed %Ld: post-run invariant violation: %s" seed
             (Invariants.summary findings));
      List.iter Urts.destroy handles)
    seeds

let suite =
  [
    Alcotest.test_case "batch ring semantics" `Quick test_batch_semantics;
    Alcotest.test_case "batch amortizes the world switch" `Quick
      test_batch_amortizes_transition;
    Alcotest.test_case "determinism: same seed, same totals" `Quick
      test_determinism;
    Alcotest.test_case "requests/sec scales with cores" `Quick test_core_scaling;
    Alcotest.test_case "work stealing leaves totals invariant" `Quick
      test_work_stealing_invariance;
    Alcotest.test_case "batched scheduler beats unbatched" `Quick
      test_batched_scheduler_run;
    Alcotest.test_case "2-enclave/2-core chaos with invariant checks" `Quick
      test_chaos_preemption_invariants;
  ]
