(* The library OS: POSIX-ish semantics in-enclave, network forwarding,
   and the in-enclave/forwarded syscall accounting that makes the Occlum
   approach pay off. *)

open Hyperenclave

let with_libos ?(mode = Sgx_types.GU) ?(switchless_net = false) body =
  let p = Platform.create ~seed:7000L () in
  let result = ref None in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config mode)
      ~ecalls:
        [
          ( 1,
            fun tenv _ ->
              let os = Libos.create tenv ~switchless_net () in
              result := Some (body os);
              Bytes.empty );
        ]
      ~ocalls:
        [
          (900, fun data -> Bytes.of_string (string_of_int (Bytes.length data)));
          ( 901,
            fun len ->
              Bytes.make (int_of_string (Bytes.to_string len)) 'r' );
        ]
  in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Urts.destroy handle;
  Option.get !result

let test_file_lifecycle () =
  with_libos (fun os ->
      let fd = Libos.openf os ~path:"/data/log.txt" [ Libos.O_creat; Libos.O_rdwr ] in
      Alcotest.(check int) "first write" 5 (Libos.write os fd (Bytes.of_string "hello"));
      Alcotest.(check int) "append-style write" 7 (Libos.write os fd (Bytes.of_string " libos!"));
      ignore (Libos.lseek os fd ~pos:0);
      Alcotest.(check string)
        "read back" "hello libos!"
        (Bytes.to_string (Libos.read os fd ~len:100));
      Alcotest.(check string)
        "read at EOF is empty" ""
        (Bytes.to_string (Libos.read os fd ~len:10));
      ignore (Libos.lseek os fd ~pos:6);
      Alcotest.(check string)
        "seek + partial read" "libos"
        (Bytes.to_string (Libos.read os fd ~len:5));
      Alcotest.(check int) "stat" 12 (Libos.stat_size os ~path:"/data/log.txt");
      Libos.close os fd;
      Alcotest.(check int) "fd table drained" 0 (Libos.open_fds os);
      (* O_TRUNC resets; O_APPEND writes at the end regardless of seeks. *)
      let fd2 = Libos.openf os ~path:"/data/log.txt" [ Libos.O_trunc; Libos.O_append ] in
      ignore (Libos.write os fd2 (Bytes.of_string "a"));
      ignore (Libos.lseek os fd2 ~pos:0);
      ignore (Libos.write os fd2 (Bytes.of_string "b"));
      Alcotest.(check int) "append semantics" 2 (Libos.stat_size os ~path:"/data/log.txt");
      Libos.close os fd2;
      Libos.unlink os ~path:"/data/log.txt";
      (try
         ignore (Libos.stat_size os ~path:"/data/log.txt");
         Alcotest.fail "stat after unlink"
       with Libos.No_such_file _ -> ());
      true)
  |> Alcotest.(check bool) "completed" true

let test_errors () =
  with_libos (fun os ->
      (try
         ignore (Libos.openf os ~path:"/missing" [ Libos.O_rdonly ]);
         Alcotest.fail "open without O_CREAT"
       with Libos.No_such_file _ -> ());
      (try
         ignore (Libos.read os 42 ~len:1);
         Alcotest.fail "bad fd"
       with Libos.Bad_fd 42 -> ());
      let s = Libos.socket os in
      (try
         ignore (Libos.read os s ~len:1);
         Alcotest.fail "file read on socket"
       with Libos.Bad_fd _ -> ());
      true)
  |> Alcotest.(check bool) "completed" true

let test_directory_listing () =
  with_libos (fun os ->
      List.iter
        (fun path -> Libos.close os (Libos.openf os ~path [ Libos.O_creat ]))
        [ "/etc/app.conf"; "/etc/keys.pem"; "/var/run.pid" ];
      Libos.list_dir os ~prefix:"/etc/")
  |> Alcotest.(check (list string)) "prefix listing" [ "/etc/app.conf"; "/etc/keys.pem" ]

let test_network_forwarding_and_stats () =
  let stats =
    with_libos (fun os ->
        let pid = Libos.getpid os in
        Alcotest.(check int) "pid" 1 pid;
        Alcotest.(check bool) "clock ticks" true (Libos.clock_monotonic os > 0);
        let fd = Libos.openf os ~path:"/tmp/x" [ Libos.O_creat; Libos.O_rdwr ] in
        for _ = 1 to 10 do
          ignore (Libos.write os fd (Bytes.of_string "block"))
        done;
        Libos.close os fd;
        let s = Libos.socket os in
        Alcotest.(check int) "send returns count" 4 (Libos.send os s (Bytes.of_string "ping"));
        Alcotest.(check string)
          "recv payload" "rrr"
          (Bytes.to_string (Libos.recv os s ~len:3));
        Libos.stats os)
  in
  (* 10 writes + open/close + socket + send + recv + pid + clock + ... all
     dispatched in-enclave; only the two socket ops actually left. *)
  Alcotest.(check int) "only network forwarded" 2 stats.Libos.forwarded;
  Alcotest.(check bool)
    (Printf.sprintf "most syscalls stayed inside (%d)" stats.Libos.in_enclave)
    true
    (stats.Libos.in_enclave > 15)

let test_exitless_is_cheaper () =
  (* The same file work costs far less than the equivalent number of
     world switches would. *)
  let p = Platform.create ~seed:7001L () in
  let cycles = ref 0 in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:
        [
          ( 1,
            fun tenv _ ->
              let os = Libos.create tenv () in
              let fd = Libos.openf os ~path:"/f" [ Libos.O_creat; Libos.O_rdwr ] in
              let _, c =
                Cycles.time tenv.Tenv.clock (fun () ->
                    for _ = 1 to 100 do
                      ignore (Libos.write os fd (Bytes.of_string "x"))
                    done)
              in
              cycles := c;
              Bytes.empty );
        ]
      ~ocalls:[]
  in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Urts.destroy handle;
  let ocall_equivalent = 100 * 4920 in
  Alcotest.(check bool)
    (Printf.sprintf "100 in-enclave writes (%d cyc) << 100 OCALLs (%d cyc)"
       !cycles ocall_equivalent)
    true
    (!cycles * 5 < ocall_equivalent)

let test_switchless_net () =
  let regular =
    with_libos ~switchless_net:false (fun os ->
        let s = Libos.socket os in
        let clock_before = Libos.clock_monotonic os in
        for _ = 1 to 20 do
          ignore (Libos.send os s (Bytes.of_string "chunk"))
        done;
        Libos.clock_monotonic os - clock_before)
  in
  let switchless =
    with_libos ~switchless_net:true (fun os ->
        let s = Libos.socket os in
        let clock_before = Libos.clock_monotonic os in
        for _ = 1 to 20 do
          ignore (Libos.send os s (Bytes.of_string "chunk"))
        done;
        Libos.clock_monotonic os - clock_before)
  in
  Alcotest.(check bool)
    (Printf.sprintf "switchless net (%d) beats regular (%d)" switchless regular)
    true
    (switchless * 2 < regular)

(* --- PR 9 additions ------------------------------------------------------ *)

let test_typed_seek () =
  with_libos (fun os ->
      let fd = Libos.openf os ~path:"/seek" [ Libos.O_creat; Libos.O_rdwr ] in
      ignore (Libos.write os fd (Bytes.of_string "abcdef"));
      ignore (Libos.lseek os fd ~pos:2);
      (* Negative and overflowing positions are typed rejections, and a
         failed seek must leave the cursor where it was. *)
      (try
         ignore (Libos.lseek os fd ~pos:(-1));
         Alcotest.fail "negative seek accepted"
       with Libos.Bad_seek -1 -> ());
      (try
         ignore (Libos.lseek os fd ~pos:(Libos.max_file_bytes + 1));
         Alcotest.fail "overflowing seek accepted"
       with Libos.Bad_seek _ -> ());
      Alcotest.(check string)
        "position survived the failed seeks" "cd"
        (Bytes.to_string (Libos.read os fd ~len:2));
      (* The boundary itself is legal (sparse files). *)
      Alcotest.(check int) "seek to the limit" Libos.max_file_bytes
        (Libos.lseek os fd ~pos:Libos.max_file_bytes);
      (* Only files seek. *)
      let s = Libos.socket ~loopback:true os in
      (try
         ignore (Libos.lseek os s ~pos:0);
         Alcotest.fail "socket seeked"
       with Libos.Bad_fd _ -> ());
      let ep = Libos.epoll_create os in
      (try
         ignore (Libos.lseek os ep ~pos:0);
         Alcotest.fail "epoll fd seeked"
       with Libos.Bad_fd _ -> ());
      true)
  |> Alcotest.(check bool) "completed" true

let test_unlink_staleness () =
  with_libos (fun os ->
      let fd = Libos.openf os ~path:"/stale" [ Libos.O_creat; Libos.O_rdwr ] in
      ignore (Libos.write os fd (Bytes.of_string "orphan data"));
      Libos.unlink os ~path:"/stale";
      (* POSIX: the open fd keeps the inode alive and fully usable... *)
      Alcotest.(check int) "fstat through the orphan fd" 11 (Libos.fstat_size os fd);
      ignore (Libos.lseek os fd ~pos:0);
      Alcotest.(check string)
        "orphan still readable" "orphan data"
        (Bytes.to_string (Libos.read os fd ~len:64));
      Alcotest.(check int) "orphan still writable" 5
        (Libos.write os fd (Bytes.of_string " more"));
      Alcotest.(check int) "orphan grew" 16 (Libos.fstat_size os fd);
      (* ...while the path is gone... *)
      (try
         ignore (Libos.stat_size os ~path:"/stale");
         Alcotest.fail "unlinked path stats"
       with Libos.No_such_file _ -> ());
      (* ...and recreating the path mints a fresh inode — no resurrection. *)
      let fd2 = Libos.openf os ~path:"/stale" [ Libos.O_creat; Libos.O_rdwr ] in
      Alcotest.(check int) "fresh inode is empty" 0 (Libos.fstat_size os fd2);
      ignore (Libos.write os fd2 (Bytes.of_string "new"));
      Alcotest.(check int) "orphan untouched by the new file" 16
        (Libos.fstat_size os fd);
      (* Short reads past EOF: never an exception, possibly short/empty. *)
      ignore (Libos.lseek os fd2 ~pos:1);
      Alcotest.(check string)
        "short read at the tail" "ew"
        (Bytes.to_string (Libos.read os fd2 ~len:100));
      ignore (Libos.lseek os fd2 ~pos:50);
      Alcotest.(check string)
        "read past EOF is empty" ""
        (Bytes.to_string (Libos.read os fd2 ~len:10));
      Libos.close os fd;
      Libos.close os fd2;
      true)
  |> Alcotest.(check bool) "completed" true

let test_epoll_readiness () =
  with_libos (fun os ->
      let ep = Libos.epoll_create os in
      let fd = Libos.openf os ~path:"/ev" [ Libos.O_creat; Libos.O_rdwr ] in
      let s = Libos.socket ~loopback:true os in
      Libos.epoll_add os ~epfd:ep ~fd ~rd:true ~wr:false;
      Libos.epoll_add os ~epfd:ep ~fd:s ~rd:true ~wr:true;
      (* Empty file at pos 0, empty socket queue: only the socket's write
         side is ready. *)
      Alcotest.(check (list (pair int bool)))
        "initially only sock-writable"
        [ (s, false) ]
        (List.map (fun (f, e) -> (f, e.Libos.rd)) (Libos.epoll_wait os ~epfd:ep));
      (* Data behind the file cursor and bytes in the socket queue flip
         both readable (level-triggered). *)
      ignore (Libos.write os fd (Bytes.of_string "data"));
      ignore (Libos.lseek os fd ~pos:0);
      Libos.sock_deliver os s (Bytes.of_string "ping");
      let ready () =
        List.filter_map
          (fun (f, e) -> if e.Libos.rd then Some f else None)
          (Libos.epoll_wait os ~epfd:ep)
      in
      Alcotest.(check (list int)) "both readable, sorted" [ fd; s ] (ready ());
      Alcotest.(check (list int)) "level-triggered: still readable" [ fd; s ]
        (ready ());
      (* Draining deasserts. *)
      ignore (Libos.read os fd ~len:10);
      ignore (Libos.recv os s ~len:10);
      Alcotest.(check (list int)) "drained fds not readable" [] (ready ());
      (* Deregistration and close both forget the fd. *)
      Libos.sock_deliver os s (Bytes.of_string "x");
      Libos.epoll_del os ~epfd:ep ~fd:s;
      Alcotest.(check (list int)) "epoll_del removes interest" [] (ready ());
      Libos.epoll_add os ~epfd:ep ~fd:s ~rd:true ~wr:false;
      Alcotest.(check (list int)) "re-added and pending" [ s ] (ready ());
      Libos.close os s;
      Alcotest.(check (list int)) "close forgets the fd" [] (ready ());
      (* No nested epoll. *)
      (try
         Libos.epoll_add os ~epfd:ep ~fd:(Libos.epoll_create os) ~rd:true
           ~wr:false;
         Alcotest.fail "nested epoll accepted"
       with Libos.Bad_fd _ -> ());
      true)
  |> Alcotest.(check bool) "completed" true

let test_loopback_sockets () =
  let stats =
    with_libos (fun os ->
        let s = Libos.socket ~loopback:true os in
        (* Empty queue: recv would-block as an empty read. *)
        Alcotest.(check string)
          "empty queue would-block" ""
          (Bytes.to_string (Libos.recv os s ~len:8));
        Libos.sock_deliver os s (Bytes.of_string "hello wo");
        Libos.sock_deliver os s (Bytes.of_string "rld");
        Alcotest.(check string)
          "short read from the queue" "hello"
          (Bytes.to_string (Libos.recv os s ~len:5));
        Alcotest.(check string)
          "cursor advances across deliveries" " world"
          (Bytes.to_string (Libos.recv os s ~len:64));
        ignore (Libos.send os s (Bytes.of_string "re"));
        ignore (Libos.send os s (Bytes.of_string "ply"));
        Alcotest.(check string)
          "drain accumulates sends" "reply"
          (Bytes.to_string (Libos.sock_drain os s));
        Alcotest.(check string)
          "drain empties the out queue" ""
          (Bytes.to_string (Libos.sock_drain os s));
        (* Plane-side injection only works on loopback fds. *)
        let fwd = Libos.socket os in
        (try
           Libos.sock_deliver os fwd (Bytes.of_string "x");
           Alcotest.fail "delivered to a forwarding socket"
         with Libos.Bad_fd _ -> ());
        Libos.stats os)
  in
  Alcotest.(check int) "loopback I/O never leaves the enclave" 0
    stats.Libos.forwarded

let test_paged_vfs () =
  (* File extents backed by the demand-paged enclave heap: a multi-page
     file round-trips through Tenv heap reads/writes (EPC commit under the
     hood) and the VFS bump allocator reports the extent bytes. *)
  let p = Platform.create ~seed:7002L () in
  let ok = ref false in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:
        [
          ( 1,
            fun tenv _ ->
              let pager =
                {
                  Vfs.p_read =
                    (fun ~off ~len ->
                      tenv.Tenv.read ~va:(tenv.Tenv.heap_base + off) ~len);
                  p_write =
                    (fun ~off data ->
                      tenv.Tenv.write ~va:(tenv.Tenv.heap_base + off) data);
                }
              in
              let os = Libos.create_rt (Libos.of_tenv tenv) ~pager () in
              let fd =
                Libos.openf os ~path:"/big" [ Libos.O_creat; Libos.O_rdwr ]
              in
              let chunk = Bytes.make 4096 'p' in
              for page = 0 to 2 do
                Bytes.set chunk 0 (Char.chr (Char.code 'a' + page));
                ignore (Libos.write os fd chunk)
              done;
              Alcotest.(check int) "three pages" 12288 (Libos.fstat_size os fd);
              ignore (Libos.lseek os fd ~pos:8192);
              let back = Libos.read os fd ~len:4096 in
              Alcotest.(check char) "page marker survives paging" 'c'
                (Bytes.get back 0);
              Alcotest.(check char) "page body survives paging" 'p'
                (Bytes.get back 4095);
              ignore (Libos.lseek os fd ~pos:4000);
              Alcotest.(check int)
                "cross-page read" 2000
                (Bytes.length (Libos.read os fd ~len:2000));
              Alcotest.(check bool) "extents came from the heap" true
                (Vfs.paged_bytes (Libos.vfs os) >= 12288);
              ok := true;
              Bytes.empty );
        ]
      ~ocalls:[]
  in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Urts.destroy handle;
  Alcotest.(check bool) "ecall body ran" true !ok

let suite =
  [
    Alcotest.test_case "file lifecycle" `Quick test_file_lifecycle;
    Alcotest.test_case "typed seek errors" `Quick test_typed_seek;
    Alcotest.test_case "unlink staleness (POSIX fds)" `Quick
      test_unlink_staleness;
    Alcotest.test_case "epoll readiness" `Quick test_epoll_readiness;
    Alcotest.test_case "loopback sockets" `Quick test_loopback_sockets;
    Alcotest.test_case "file-backed VFS pages the heap" `Quick test_paged_vfs;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "directory listing" `Quick test_directory_listing;
    Alcotest.test_case "network forwarding + stats" `Quick
      test_network_forwarding_and_stats;
    Alcotest.test_case "exitless file I/O is cheap" `Quick test_exitless_is_cheaper;
    Alcotest.test_case "switchless network" `Quick test_switchless_net;
  ]
