(* The model checker checked: exhaustive small-depth exploration stays
   green and deterministic, a deliberately seeded monitor bug is found
   and minimized to a replayable two-step trace, the trace minimizer is
   1-minimal on a known example, and random well-formed transition
   sequences (the QCheck face of the same alphabet) never crash the
   monitor or leave the invariant audit non-empty. *)

open Hyperenclave
module World = Mc_world
module Alphabet = Mc_alphabet
module Trace = Mc_trace

(* --- exhaustive exploration -------------------------------------------- *)

(* Depth 6 explores in ~150ms; the full committed depth lives in the
   @mc_smoke gate, not here, so `dune exec test/test_main.exe` stays
   fast. *)
let explore_depth = 6

let test_exhaustive () =
  let result = Mc.run ~depth:explore_depth World.default_config in
  (match result.Mc.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "violation in the default world:@.%a" Mc.pp_violation v);
  let s = result.Mc.stats in
  Alcotest.(check bool) "complete" true s.Mc.complete;
  Alcotest.(check bool)
    (Printf.sprintf "explores a real state space (%d states)" s.Mc.states)
    true (s.Mc.states >= 500);
  Alcotest.(check int)
    "every refusal comes from an attack transition" s.Mc.refusals
    s.Mc.attacks_refused;
  Alcotest.(check bool)
    (Printf.sprintf "attacks were actually thrown at the monitor (%d)"
       s.Mc.attacks_refused)
    true
    (s.Mc.attacks_refused >= 100);
  Alcotest.(check int) "reaches the depth bound" explore_depth s.Mc.max_depth

let test_deterministic () =
  let stats () =
    let r = Mc.run ~depth:5 World.default_config in
    let s = r.Mc.stats in
    ((s.Mc.states, s.Mc.transitions), (s.Mc.dedup_hits, s.Mc.refusals))
  in
  let a = stats () and b = stats () in
  Alcotest.(check (pair (pair int int) (pair int int))) "two runs agree" a b

let test_state_cap () =
  let result = Mc.run ~depth:explore_depth ~max_states:50 World.default_config in
  Alcotest.(check bool) "cap reported" false result.Mc.stats.Mc.complete;
  Alcotest.(check int) "cap respected" 50 result.Mc.stats.Mc.states

let test_telemetry () =
  let tel = Telemetry.create () in
  let result = Mc.run ~depth:4 ~telemetry:tel World.default_config in
  Alcotest.(check int)
    "states counter" result.Mc.stats.Mc.states
    (Telemetry.counter tel "mc.states");
  Alcotest.(check int)
    "transitions counter" result.Mc.stats.Mc.transitions
    (Telemetry.counter tel "mc.transitions");
  Alcotest.(check int)
    "max depth high-water mark" result.Mc.stats.Mc.max_depth
    (Telemetry.counter tel "mc.max_depth")

(* --- the seeded bug is found, minimized, and replays -------------------- *)

let test_seeded_bug () =
  let cfg = { World.default_config with World.seed_bug = true } in
  let result = Mc.run ~depth:4 cfg in
  match result.Mc.violation with
  | None -> Alcotest.fail "seeded Sabotage transition was never caught"
  | Some v ->
      (match v.Mc.kind with
      | Mc.Oracle_failed msg ->
          Alcotest.(check bool)
            (Printf.sprintf "audit names the monitor frame leak: %s" msg)
            true
            (String.length msg > 0)
      | Mc.Attack_accepted | Mc.Crash _ ->
          Alcotest.failf "wrong violation kind:@.%a" Mc.pp_violation v);
      (* Sabotage needs slot 0 to exist, so 1-minimal is exactly
         [ecreate[0]; sabotage]. *)
      Alcotest.(check (list string))
        "minimized to the two-step counterexample"
        [ "ecreate[0]"; "sabotage" ]
        (List.map Alphabet.to_string v.Mc.trace);
      (* The printed trace replays: parse it back from its canonical
         names and run it against a fresh world. *)
      let reparsed =
        List.map
          (fun tr ->
            match Alphabet.of_string (Alphabet.to_string tr) with
            | Some tr' -> tr'
            | None ->
                Alcotest.failf "unparseable transition %S"
                  (Alphabet.to_string tr))
          v.Mc.trace
      in
      (match Mc.replay cfg reparsed with
      | Some (Mc.Oracle_failed _) -> ()
      | other ->
          Alcotest.failf "reparsed trace does not reproduce (%s)"
            (match other with
            | None -> "no violation"
            | Some (Mc.Attack_accepted) -> "attack_accepted"
            | Some (Mc.Crash m) -> "crash: " ^ m
            | Some (Mc.Oracle_failed _) -> assert false));
      (* And it is really 1-minimal: every strict sub-trace is clean. *)
      List.iteri
        (fun i _ ->
          let sub = List.filteri (fun j _ -> j <> i) v.Mc.trace in
          match Mc.replay cfg sub with
          | None -> ()
          | Some _ ->
              Alcotest.failf "dropping step %d still fails — not minimal" i)
        v.Mc.trace

let test_bug_free_world_ignores_sabotage () =
  (* Without [seed_bug] the Sabotage transition is absent from the
     alphabet entirely. *)
  let w = World.create World.default_config in
  Alcotest.(check bool)
    "sabotage not in the default alphabet" false
    (List.mem Alphabet.Sabotage (World.alphabet w))

(* --- the minimizer on a known example ----------------------------------- *)

let test_minimize () =
  (* Failure = the trace contains both "b" and "d"; everything else is
     noise the minimizer must strip. *)
  let replay cand = List.mem "b" cand && List.mem "d" cand in
  Alcotest.(check (list string))
    "strips all noise" [ "b"; "d" ]
    (Trace.minimize ~replay [ "a"; "b"; "c"; "d"; "e" ]);
  Alcotest.(check (list string))
    "already minimal" [ "b"; "d" ]
    (Trace.minimize ~replay [ "b"; "d" ]);
  Alcotest.(check (list string))
    "non-failing input returned unchanged" [ "a"; "c" ]
    (Trace.minimize ~replay [ "a"; "c" ])

let test_trace_pp () =
  let steps =
    [ Trace.step "ecreate[0]"; Trace.step ~detail:"refused: x" "eadd[1]" ]
  in
  let s = Trace.to_string steps in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "step 1 printed" true (contains s "1. ecreate[0]");
  Alcotest.(check bool) "detail printed" true (contains s "refused: x")

(* --- QCheck: random well-formed sequences ------------------------------- *)

(* A sequence is generated as abstract choice indices; each index picks
   among the transitions *enabled in the state actually reached*, so
   every generated sequence is well-formed by construction and shrinking
   stays meaningful (a prefix of choices is still a valid run). *)
let qcheck_random_walks =
  QCheck.Test.make ~name:"random well-formed walks stay green" ~count:60
    QCheck.(
      pair (int_bound 1_000_000)
        (list_of_size (QCheck.Gen.int_range 1 25) (int_bound 10_000)))
    (fun (salt, choices) ->
      let w = World.create World.default_config in
      let taken = ref [] in
      let fail_with msg =
        let steps =
          Mc.to_trace (List.rev !taken)
          @ [ Mc_trace.step ~detail:msg "FAILED" ]
        in
        QCheck.Test.fail_reportf "%s@.trace:@.%s" msg
          (Trace.to_string steps)
      in
      List.iteri
        (fun i choice ->
          let enabled =
            List.filter (World.enabled w) (World.alphabet w)
          in
          match enabled with
          | [] -> fail_with "no transition enabled — world wedged"
          | _ ->
              let tr =
                List.nth enabled ((choice + (salt * i)) mod List.length enabled)
              in
              taken := tr :: !taken;
              (match World.apply w tr with
              | World.Crashed msg ->
                  fail_with
                    (Printf.sprintf "untyped crash on %s: %s"
                       (Alphabet.to_string tr) msg)
              | World.Applied when Alphabet.expects_refusal tr ->
                  fail_with
                    (Printf.sprintf "attack %s applied without refusal"
                       (Alphabet.to_string tr))
              | World.Applied | World.Refused _ -> ());
              (match World.oracle w with
              | [] -> ()
              | findings ->
                  fail_with
                    (Printf.sprintf "oracle after %s: %s"
                       (Alphabet.to_string tr)
                       (String.concat "; " findings))))
        choices;
      true)

let suite =
  [
    Alcotest.test_case "exhaustive exploration is green" `Quick test_exhaustive;
    Alcotest.test_case "exploration is deterministic" `Quick test_deterministic;
    Alcotest.test_case "state cap reported" `Quick test_state_cap;
    Alcotest.test_case "telemetry counters" `Quick test_telemetry;
    Alcotest.test_case "seeded bug found + minimized + replays" `Quick
      test_seeded_bug;
    Alcotest.test_case "sabotage absent without seed_bug" `Quick
      test_bug_free_world_ignores_sabotage;
    Alcotest.test_case "minimizer is 1-minimal" `Quick test_minimize;
    Alcotest.test_case "trace pretty-printer" `Quick test_trace_pp;
    QCheck_alcotest.to_alcotest qcheck_random_walks;
  ]
