(* Real LibOS workloads behind the attested plane: every request enters
   as an AEAD envelope, decrypts into its ring slot, rides a loopback
   socket through the service's in-enclave event loop, and the reply is
   sealed in place.  These are the Fig. 8b-8d request mixes, end to end. *)

open Hyperenclave

let golden_of (p : Platform.t) =
  Verifier.golden_of_boot_log
    ~ek_public:(Tpm.ek_public p.Platform.tpm)
    (Monitor.boot_log p.Platform.monitor)

let identity_of (backend : Backend.t) =
  match backend.Backend.identity with
  | Some id -> id
  | None -> Bytes.empty

let client_for p ~seed backend =
  let identity = identity_of backend in
  Serve.Client.create
    ~rng:(Rng.create ~seed)
    ~golden:(golden_of p)
    ~policy:
      {
        Verifier.expected_mrenclave = Some identity;
        expected_mrsigner = None;
        allow_debug = false;
      }
    ~expected_tenant:identity ()

(* One plane, one service tenant, one established session. *)
let build kind ~seed =
  let p = Platform.create ~seed () in
  let plane = Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p Serve.default_config in
  let name = Services.kind_name kind in
  let backend = Serve.add_tenant plane ~name (Services.backend_config kind) in
  let client = client_for p ~seed:(Int64.add seed 1L) backend in
  (match Serve.handshake plane ~tenant:name (Serve.Client.hello client) with
  | Error r -> Alcotest.failf "handshake rejected: %a" Serve.pp_reject r
  | Ok accept -> (
      match Serve.Client.establish client accept with
      | Error r -> Alcotest.failf "establish failed: %a" Serve.pp_reject r
      | Ok () -> ()));
  (p, plane, backend, client)

let admin (backend : Backend.t) data =
  backend.Backend.call ~id:Services.ecall_admin ~data ~direction:Edge.In_out ()

let serve_one plane client request =
  match
    Serve.Client.roundtrip plane client [ (Services.ecall_request, request) ]
  with
  | [ Ok reply ] -> reply
  | [ Error r ] -> Alcotest.failf "request rejected: %a" Serve.pp_reject r
  | results -> Alcotest.failf "expected one reply, got %d" (List.length results)

let check_invariants (p : Platform.t) =
  match Invariants.check p.Platform.monitor with
  | [] -> ()
  | findings ->
      Alcotest.failf "monitor invariants violated: %s"
        (Invariants.summary findings)

let prefix pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

(* ------------------------------------------------------------------ *)

let test_resp_kv_end_to_end () =
  let p, plane, backend, client = build Services.Resp_kv ~seed:9100L in
  (* Operator bulk-load, off-session. *)
  Alcotest.(check string)
    "loaded store size" "100"
    (Bytes.to_string (admin backend (Services.load_request ~records:100)));
  (* YCSB-shaped RESP traffic over the AEAD session: zipfian point
     reads/updates plus scan anchors, every reply affirmative. *)
  let gen = Hyperenclave.Workloads.Ycsb.create ~rng:(Rng.create ~seed:91L) ~records:100 () in
  for i = 1 to 30 do
    let op =
      if i mod 5 = 0 then Hyperenclave.Workloads.Ycsb.next_scan gen ~max_len:4 ()
      else if i mod 2 = 0 then Hyperenclave.Workloads.Ycsb.next_op_b gen
      else Hyperenclave.Workloads.Ycsb.next_op_a gen
    in
    let reply =
      serve_one plane client (Services.request_of_op Services.Resp_kv op)
    in
    Alcotest.(check bool)
      (Printf.sprintf "op %d served (%s)" i (Bytes.to_string reply))
      true
      (Services.reply_ok Services.Resp_kv reply)
  done;
  (* Explicit SET/GET through the session round-trips the value. *)
  let set =
    Hyperenclave.Workloads.Resp_kv.encode_command [ "SET"; "paper"; "hyperenclave" ]
  in
  Alcotest.(check string) "SET ok" "+OK" (Bytes.to_string (serve_one plane client set));
  let get = Hyperenclave.Workloads.Resp_kv.encode_command [ "GET"; "paper" ] in
  Alcotest.(check string)
    "GET returns the value" "$12\nhyperenclave"
    (Bytes.to_string (serve_one plane client get));
  (* A miss is a typed nil, not an error and not a hit. *)
  let miss =
    serve_one plane client
      (Hyperenclave.Workloads.Resp_kv.encode_command [ "GET"; "absent" ])
  in
  Alcotest.(check bool) "miss is nil" false (Services.reply_ok Services.Resp_kv miss);
  check_invariants p;
  Serve.destroy plane

let test_kvdb_end_to_end () =
  let p, plane, backend, client = build Services.Kvdb ~seed:9200L in
  Alcotest.(check string)
    "loaded rows" "200"
    (Bytes.to_string (admin backend (Services.load_request ~records:200)));
  let module Ycsb = Hyperenclave.Workloads.Ycsb in
  let gen = Ycsb.create ~rng:(Rng.create ~seed:92L) ~records:200 () in
  (* The three YCSB mixes plus range scans, as SQL over the session. *)
  let ops =
    List.init 12 (fun _ -> Ycsb.next_op_a gen)
    @ List.init 12 (fun _ -> Ycsb.next_op_b gen)
    @ List.init 12 (fun _ -> Ycsb.next_op_c gen)
    @ List.init 6 (fun _ -> Ycsb.next_scan gen ~max_len:8 ())
  in
  List.iteri
    (fun i op ->
      let reply = serve_one plane client (Services.request_of_op Services.Kvdb op) in
      let s = Bytes.to_string reply in
      Alcotest.(check bool)
        (Printf.sprintf "stmt %d served (%s)" i s)
        true
        (Services.reply_ok Services.Kvdb reply);
      match op with
      | Ycsb.Scan (_, _) ->
          Alcotest.(check bool) ("scan counts rows: " ^ s) true
            (prefix "+" s
            && String.length s > 5
            && String.sub s (String.length s - 4) 4 = "rows")
      | Ycsb.Read _ | Ycsb.Update _ -> ())
    ops;
  (* Malformed SQL over a valid envelope: typed engine error in-band. *)
  let bad =
    serve_one plane client (Bytes.of_string "DROP TABLE kv; --")
  in
  Alcotest.(check bool)
    ("bad SQL is -ERR: " ^ Bytes.to_string bad)
    true
    (prefix "-ERR" (Bytes.to_string bad));
  (* And the session is still healthy afterwards. *)
  let again =
    serve_one plane client
      (Services.request_of_op Services.Kvdb (Ycsb.Read 0))
  in
  Alcotest.(check bool) "session survives the error" true
    (Services.reply_ok Services.Kvdb again);
  check_invariants p;
  Serve.destroy plane

let test_httpd_end_to_end () =
  let p, plane, backend, client = build Services.Httpd ~seed:9300L in
  (* Populate the file-backed docroot: one multi-chunk page (body
     streaming crosses chunk_bytes twice), one small page. *)
  Alcotest.(check string)
    "docroot page" "40000"
    (Bytes.to_string
       (admin backend (Services.page_request ~path:"/index.html" ~bytes:40000)));
  Alcotest.(check string)
    "small page" "100"
    (Bytes.to_string
       (admin backend (Services.page_request ~path:"/favicon.ico" ~bytes:100)));
  let get path = serve_one plane client (Services.http_request ~path) in
  let index = Bytes.to_string (get "/index.html") in
  Alcotest.(check bool) ("200 with full body: " ^ index) true
    (Services.reply_ok Services.Httpd (Bytes.of_string index)
    && prefix "HTTP/1.1 200 OK bytes=40000" index);
  Alcotest.(check bool) "small file served" true
    (prefix "HTTP/1.1 200 OK bytes=100" (Bytes.to_string (get "/favicon.ico")));
  (* Typed protocol failures, all in-band: missing file, bad method,
     unparseable request line. *)
  Alcotest.(check bool) "404 on a miss" true
    (prefix "HTTP/1.1 404" (Bytes.to_string (get "/missing.html")));
  let post =
    serve_one plane client (Bytes.of_string "POST /index.html HTTP/1.1\nhost: svc\n")
  in
  Alcotest.(check bool) "405 on POST" true
    (prefix "HTTP/1.1 405" (Bytes.to_string post));
  let garbage = serve_one plane client (Bytes.of_string "\x00\x01not-http") in
  Alcotest.(check bool) "400 on garbage" true
    (prefix "HTTP/1.1 400" (Bytes.to_string garbage));
  check_invariants p;
  Serve.destroy plane

let test_negative_paths () =
  (* One plane, two service tenants, independent sessions. *)
  let p = Platform.create ~seed:9400L () in
  let plane = Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p Serve.default_config in
  let resp_backend =
    Serve.add_tenant plane ~name:"resp_kv" (Services.backend_config Services.Resp_kv)
  in
  let kv_backend =
    Serve.add_tenant plane ~name:"kvdb" (Services.backend_config Services.Kvdb)
  in
  let establish name client =
    match Serve.handshake plane ~tenant:name (Serve.Client.hello client) with
    | Error r -> Alcotest.failf "handshake rejected: %a" Serve.pp_reject r
    | Ok accept -> (
        match Serve.Client.establish client accept with
        | Error r -> Alcotest.failf "establish failed: %a" Serve.pp_reject r
        | Ok () -> ())
  in
  let c_resp = client_for p ~seed:941L resp_backend in
  let c_kv = client_for p ~seed:942L kv_backend in
  establish "resp_kv" c_resp;
  establish "kvdb" c_kv;
  ignore (admin resp_backend (Services.load_request ~records:10));
  ignore (admin kv_backend (Services.load_request ~records:10));
  let expect_reject expected = function
    | Ok _ -> Alcotest.failf "expected %s rejection" expected
    | Error r ->
        Alcotest.(check string) "reject kind" expected (Serve.reject_name r)
  in
  (* Malformed RESP inside a perfectly valid envelope: the parser's
     typed error comes back in-band and the plane keeps serving. *)
  let bad =
    serve_one plane c_resp (Bytes.of_string "*2\r\n$5\r\nab\r\n")
  in
  Alcotest.(check bool)
    ("parser bound violation is -ERR: " ^ Bytes.to_string bad)
    true
    (prefix "-ERR" (Bytes.to_string bad));
  let healthy =
    serve_one plane c_resp
      (Hyperenclave.Workloads.Resp_kv.encode_command [ "DBSIZE" ])
  in
  Alcotest.(check string) "plane still serving" "+10" (Bytes.to_string healthy);
  (* Oversize request: ciphertext exceeding the ring slot is refused at
     admission with a typed Unsupported, not a truncation.  (A rejected
     submit still consumes the client's sequence number, so the typed
     rejects run after the in-band traffic above.) *)
  expect_reject "unsupported"
    (Serve.submit plane
       (Serve.Client.request c_resp ~ecall:Services.ecall_request
          (Bytes.make 300 'x')));
  (* Cross-tenant key confusion: a request sealed under kvdb's session
     key replayed into the resp_kv session fails AEAD authentication. *)
  let stolen =
    Serve.Client.request c_kv ~ecall:Services.ecall_request
      (Bytes.of_string "SELECT v FROM kv WHERE k = 1")
  in
  expect_reject "bad-auth"
    (Serve.submit plane
       { stolen with Serve.session_id = Serve.Client.session_id c_resp });
  (* Per-service request accounting surfaced through the scheduler. *)
  let telemetry = Monitor.telemetry p.Platform.monitor in
  Alcotest.(check bool) "resp_kv requests labeled" true
    (Telemetry.counter telemetry "sched.svc.resp_kv" > 0);
  check_invariants p;
  Serve.destroy plane

let suite =
  [
    Alcotest.test_case "resp_kv over AEAD sessions" `Quick test_resp_kv_end_to_end;
    Alcotest.test_case "kvdb YCSB A/B/C + scans over AEAD" `Quick
      test_kvdb_end_to_end;
    Alcotest.test_case "httpd file-backed docroot over AEAD" `Quick
      test_httpd_end_to_end;
    Alcotest.test_case "negative paths stay typed" `Quick test_negative_paths;
  ]
