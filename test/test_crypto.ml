(* Crypto primitives against published vectors, plus roundtrip and
   tamper-detection properties. *)

open Hyperenclave.Crypto

let hex = Sha256.to_hex

let of_hex s =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let check_hex = Alcotest.(check string)

(* --- SHA-256 (FIPS 180-4 / NIST CAVP vectors) -------------------------------- *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex (Sha256.digest_string ""));
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex (Sha256.digest_string "abc"));
  check_hex "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex
       (Sha256.digest_string
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  check_hex "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Sha256.digest_bytes (Bytes.make 1_000_000 'a')))

let test_sha256_incremental () =
  let data = "The quick brown fox jumps over the lazy dog, repeatedly." in
  let oneshot = Sha256.digest_string data in
  let ctx = Sha256.init () in
  String.iter (fun c -> Sha256.update_string ctx (String.make 1 c)) data;
  Alcotest.(check string)
    "bytewise = oneshot" (hex oneshot)
    (hex (Sha256.finalize ctx));
  let ctx2 = Sha256.init () in
  Sha256.update_string ctx2 data;
  ignore (Sha256.finalize ctx2);
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Sha256.finalize: already finalized") (fun () ->
      ignore (Sha256.finalize ctx2))

let test_sha256_equal () =
  let a = Sha256.digest_string "x" and b = Sha256.digest_string "x" in
  Alcotest.(check bool) "equal digests" true (Sha256.equal a b);
  Alcotest.(check bool)
    "different digests" false
    (Sha256.equal a (Sha256.digest_string "y"));
  Alcotest.(check bool) "length mismatch" false (Sha256.equal a (Bytes.create 4))

(* --- HMAC (RFC 4231) ------------------------------------------------------------ *)

let test_hmac_vectors () =
  check_hex "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Hmac.hmac_string ~key:(Bytes.make 20 '\x0b') "Hi There"));
  check_hex "rfc4231 case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex
       (Hmac.hmac_string ~key:(Bytes.of_string "Jefe")
          "what do ya want for nothing?"));
  (* case 3: 20 x 0xaa key, 50 x 0xdd data *)
  check_hex "rfc4231 case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex (Hmac.hmac ~key:(Bytes.make 20 '\xaa') (Bytes.make 50 '\xdd')))

let test_hmac_verify () =
  let key = Bytes.of_string "0123456789abcdef0123456789abcdef" in
  let msg = Bytes.of_string "attested message" in
  let tag = Hmac.hmac ~key msg in
  Alcotest.(check bool) "verify ok" true (Hmac.verify ~key msg ~tag);
  Alcotest.(check bool)
    "verify bad msg" false
    (Hmac.verify ~key (Bytes.of_string "attested message!") ~tag)

let test_hkdf () =
  (* RFC 5869 test case 1. *)
  let ikm = Bytes.make 22 '\x0b' in
  let salt = of_hex "000102030405060708090a0b0c" in
  let prk = Hmac.hkdf_extract ~salt ~ikm () in
  check_hex "prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    (hex prk);
  (* info = 0xf0..f9, L=42 *)
  let info = Bytes.to_string (of_hex "f0f1f2f3f4f5f6f7f8f9") in
  let okm = Hmac.hkdf_expand ~prk ~info ~len:42 in
  check_hex "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (hex okm);
  Alcotest.(check int) "derive is 32 bytes" 32 (Bytes.length (Hmac.derive ~key:ikm ~info:"x"));
  Alcotest.(check bool)
    "derive domain separation" false
    (Bytes.equal (Hmac.derive ~key:ikm ~info:"a") (Hmac.derive ~key:ikm ~info:"b"))

(* --- AES (FIPS 197) ---------------------------------------------------------------- *)

let test_aes_vector () =
  let key = Aes.expand_key (of_hex "000102030405060708090a0b0c0d0e0f") in
  let ct = Aes.encrypt_block key (of_hex "00112233445566778899aabbccddeeff") in
  check_hex "fips-197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (hex ct);
  check_hex "decrypt inverts" "00112233445566778899aabbccddeeff"
    (hex (Aes.decrypt_block key ct))

let test_aes_ctr () =
  let key = Bytes.of_string "0123456789abcdef" in
  let nonce = Bytes.make 12 '\x01' in
  let plaintext = Bytes.of_string "counter mode works on odd lengths too!" in
  let ct = Aes.ctr_transform ~key ~nonce plaintext in
  Alcotest.(check bool) "ciphertext differs" false (Bytes.equal ct plaintext);
  Alcotest.(check string)
    "ctr roundtrip"
    (Bytes.to_string plaintext)
    (Bytes.to_string (Aes.ctr_transform ~key ~nonce ct))

let test_aes_xts () =
  let key = Bytes.of_string "fedcba9876543210" in
  let plaintext = Bytes.make 64 'p' in
  let ct1 = Aes.xts_encrypt ~key ~tweak:0x1000 plaintext in
  let ct2 = Aes.xts_encrypt ~key ~tweak:0x2000 plaintext in
  Alcotest.(check bool)
    "tweak (address) changes ciphertext" false (Bytes.equal ct1 ct2);
  Alcotest.(check bool)
    "blocks differ within buffer" false
    (Bytes.equal (Bytes.sub ct1 0 16) (Bytes.sub ct1 16 16));
  Alcotest.(check string)
    "xts roundtrip"
    (Bytes.to_string plaintext)
    (Bytes.to_string (Aes.xts_decrypt ~key ~tweak:0x1000 ct1));
  Alcotest.check_raises "length check" (Invalid_argument "Aes.xts: length % 16 <> 0")
    (fun () -> ignore (Aes.xts_encrypt ~key ~tweak:0 (Bytes.create 15)))

(* --- Signatures ---------------------------------------------------------------------- *)

let test_signature () =
  let rng = Hyperenclave.Rng.create ~seed:9L in
  let sk, pk = Signature.generate rng in
  let msg = Bytes.of_string "enclave measurement" in
  let signature = Signature.sign sk msg in
  Alcotest.(check bool) "verify ok" true (Signature.verify pk msg ~signature);
  Alcotest.(check bool)
    "other message fails" false
    (Signature.verify pk (Bytes.of_string "enclave measurement!") ~signature);
  let _, pk2 = Signature.generate rng in
  Alcotest.(check bool) "other key fails" false (Signature.verify pk2 msg ~signature);
  Alcotest.(check bool)
    "unregistered key fails" false
    (Signature.verify (Bytes.make 32 'z') msg ~signature);
  (* export/import keeps identity *)
  let sk' = Signature.import_private (Signature.export_private sk) in
  Alcotest.(check bool)
    "imported key signs identically" true
    (Signature.verify pk msg ~signature:(Signature.sign sk' msg))

(* --- Authenc ---------------------------------------------------------------------------- *)

let test_authenc () =
  let key = Hmac.derive ~key:(Bytes.of_string "root") ~info:"seal" in
  let nonce = Bytes.make 12 '\x42' in
  let aad = Bytes.of_string "policy" in
  let sealed = Authenc.seal ~key ~aad ~nonce (Bytes.of_string "secret data") in
  Alcotest.(check string)
    "roundtrip" "secret data"
    (Bytes.to_string (Authenc.unseal ~key sealed));
  let tampered = { sealed with Authenc.ciphertext = Bytes.map (fun c -> Char.chr (Char.code c lxor 1)) sealed.Authenc.ciphertext } in
  Alcotest.check_raises "tampered ciphertext" Authenc.Authentication_failure
    (fun () -> ignore (Authenc.unseal ~key tampered));
  let tampered_aad = { sealed with Authenc.aad = Bytes.of_string "POLICY" } in
  Alcotest.check_raises "tampered aad" Authenc.Authentication_failure (fun () ->
      ignore (Authenc.unseal ~key tampered_aad));
  let wrong_key = Hmac.derive ~key:(Bytes.of_string "other") ~info:"seal" in
  Alcotest.check_raises "wrong key" Authenc.Authentication_failure (fun () ->
      ignore (Authenc.unseal ~key:wrong_key sealed));
  let decoded = Authenc.decode (Authenc.encode sealed) in
  Alcotest.(check string)
    "encode/decode roundtrip" "secret data"
    (Bytes.to_string (Authenc.unseal ~key decoded))

(* --- zero-copy path ---------------------------------------------------------------------- *)

let test_ctr_into () =
  let raw_key = Bytes.of_string "0123456789abcdef" in
  let key = Aes.expand_key raw_key in
  let nonce = Bytes.make 12 '\x07' in
  let data = Bytes.of_string "slices must match the one-shot keystream" in
  let oneshot = Aes.ctr_transform ~key:raw_key ~nonce data in
  (* Same offset in a larger buffer. *)
  let src = Bytes.cat (Bytes.of_string "pad:") data in
  let dst = Bytes.make (Bytes.length src) '\x00' in
  Aes.ctr_into ~key ~nonce ~src ~src_off:4 ~dst ~dst_off:4
    ~len:(Bytes.length data);
  Alcotest.(check string)
    "slice = one-shot"
    (Bytes.to_string oneshot)
    (Bytes.to_string (Bytes.sub dst 4 (Bytes.length data)));
  (* Aliased src/dst: a true in-place transform. *)
  let buf = Bytes.copy data in
  Aes.ctr_into ~key ~nonce ~src:buf ~src_off:0 ~dst:buf ~dst_off:0
    ~len:(Bytes.length buf);
  Alcotest.(check string)
    "in-place = one-shot" (Bytes.to_string oneshot) (Bytes.to_string buf);
  Aes.ctr_into ~key ~nonce ~src:buf ~src_off:0 ~dst:buf ~dst_off:0
    ~len:(Bytes.length buf);
  Alcotest.(check string)
    "in-place inverts" (Bytes.to_string data) (Bytes.to_string buf);
  Alcotest.check_raises "bounds checked"
    (Invalid_argument "Aes.ctr_into: source slice out of bounds") (fun () ->
      Aes.ctr_into ~key ~nonce ~src:buf ~src_off:1 ~dst:buf ~dst_off:0
        ~len:(Bytes.length buf))

let test_update_sub () =
  let data = Bytes.of_string "incremental hashing over sub-slices" in
  let ctx = Sha256.init () in
  Sha256.update_sub ctx data ~off:0 ~len:11;
  Sha256.update_sub ctx data ~off:11 ~len:(Bytes.length data - 11);
  Alcotest.(check string)
    "update_sub = digest"
    (hex (Sha256.digest_bytes data))
    (hex (Sha256.finalize ctx));
  let ctx = Sha256.init () in
  Alcotest.check_raises "slice bounds"
    (Invalid_argument "Sha256.update_sub: slice out of bounds") (fun () ->
      Sha256.update_sub ctx data ~off:1 ~len:(Bytes.length data))

let test_hmac_slices () =
  let key = Bytes.of_string "hmac-slices-key" in
  let a = Bytes.of_string "first|" in
  let b = Bytes.of_string "XXsecondYY" in
  let whole = Bytes.cat a (Bytes.sub b 2 6) in
  Alcotest.(check string)
    "slices = concatenation"
    (hex (Hmac.hmac ~key whole))
    (hex
       (Hmac.hmac_slices ~key
          [ (a, 0, Bytes.length a); (b, 2, 6) ]))

let test_authenc_zero_copy () =
  let key = Hmac.derive ~key:(Bytes.of_string "root") ~info:"zc" in
  let keys = Authenc.prepare key in
  let nonce = Bytes.make 12 '\x21' in
  let aad = Bytes.of_string "zc-policy" in
  let plaintext = Bytes.of_string "zero-copy sealed payload" in
  let len = Bytes.length plaintext in
  let reference = Authenc.seal ~key ~aad ~nonce plaintext in
  (* seal_into produces the same ciphertext and tag as the one-shot. *)
  let ct = Bytes.create len in
  let tag =
    Authenc.seal_into keys ~aad ~nonce ~src:plaintext ~src_off:0 ~dst:ct
      ~dst_off:0 ~len ()
  in
  Alcotest.(check string)
    "ciphertext = one-shot"
    (Bytes.to_string reference.Authenc.ciphertext)
    (Bytes.to_string ct);
  Alcotest.(check string)
    "tag = one-shot" (hex reference.Authenc.tag) (hex tag);
  (* verify_sealed / verify_slice authenticate without plaintext. *)
  Alcotest.(check bool)
    "verify_sealed ok" true (Authenc.verify_sealed keys reference);
  Alcotest.(check bool)
    "verify_slice ok" true
    (Authenc.verify_slice keys ~aad ~nonce ~tag ~buf:ct ~off:0 ~len ());
  let bad = { reference with Authenc.aad = Bytes.of_string "other" } in
  Alcotest.(check bool)
    "verify_sealed rejects wrong aad" false (Authenc.verify_sealed keys bad);
  (* decrypt_into completes a deferred unseal. *)
  let out = Bytes.create len in
  Authenc.decrypt_into keys ~nonce ~src:ct ~src_off:0 ~dst:out ~dst_off:0 ~len;
  Alcotest.(check string)
    "deferred decrypt" (Bytes.to_string plaintext) (Bytes.to_string out);
  (* unseal_in_place roundtrips and leaves the buffer untouched on a
     bad tag. *)
  let buf = Bytes.copy ct in
  Authenc.unseal_in_place keys ~aad ~nonce ~tag buf ~off:0 ~len;
  Alcotest.(check string)
    "in-place unseal" (Bytes.to_string plaintext) (Bytes.to_string buf);
  let buf = Bytes.copy ct in
  let wrong = Bytes.map (fun c -> Char.chr (Char.code c lxor 1)) tag in
  Alcotest.check_raises "in-place tamper" Authenc.Authentication_failure
    (fun () -> Authenc.unseal_in_place keys ~aad ~nonce ~tag:wrong buf ~off:0 ~len);
  Alcotest.(check string)
    "buffer untouched on failure" (Bytes.to_string ct) (Bytes.to_string buf);
  (* A prepared-keys unseal of a one-shot seal (and vice versa) is the
     compatibility the serving plane relies on. *)
  Alcotest.(check string)
    "one-shot unseal of seal_into output" (Bytes.to_string plaintext)
    (Bytes.to_string
       (Authenc.unseal ~key { Authenc.nonce; ciphertext = ct; tag; aad }))

(* --- properties ---------------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"aes encrypt/decrypt roundtrip" ~count:100
      (string_of_size (Gen.return 16))
      (fun s ->
        let key = Aes.expand_key (Bytes.of_string "aaaabbbbccccdddd") in
        let block = Bytes.of_string s in
        Bytes.equal (Aes.decrypt_block key (Aes.encrypt_block key block)) block);
    Test.make ~name:"ctr roundtrip any length" ~count:100 string (fun s ->
        let key = Bytes.of_string "0123456789abcdef" in
        let nonce = Bytes.make 12 'n' in
        let data = Bytes.of_string s in
        Bytes.equal
          (Aes.ctr_transform ~key ~nonce (Aes.ctr_transform ~key ~nonce data))
          data);
    Test.make ~name:"authenc seal/unseal roundtrip" ~count:100
      (pair string string)
      (fun (secret, aad) ->
        let key = Hmac.derive ~key:(Bytes.of_string "k") ~info:"t" in
        let sealed =
          Authenc.seal ~key ~aad:(Bytes.of_string aad) ~nonce:(Bytes.make 12 'x')
            (Bytes.of_string secret)
        in
        Bytes.to_string (Authenc.unseal ~key (Authenc.decode (Authenc.encode sealed)))
        = secret);
    Test.make ~name:"sha256 distinct on distinct strings" ~count:200
      (pair small_string small_string)
      (fun (a, b) ->
        a = b || not (Sha256.equal (Sha256.digest_string a) (Sha256.digest_string b)));
  ]

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_tests
  @ [
      Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
      Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
      Alcotest.test_case "sha256 equal" `Quick test_sha256_equal;
      Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors;
      Alcotest.test_case "hmac verify" `Quick test_hmac_verify;
      Alcotest.test_case "hkdf rfc5869" `Quick test_hkdf;
      Alcotest.test_case "aes fips vector" `Quick test_aes_vector;
      Alcotest.test_case "aes ctr" `Quick test_aes_ctr;
      Alcotest.test_case "aes xts" `Quick test_aes_xts;
      Alcotest.test_case "signatures" `Quick test_signature;
      Alcotest.test_case "authenc" `Quick test_authenc;
      Alcotest.test_case "aes ctr_into slices" `Quick test_ctr_into;
      Alcotest.test_case "sha256 update_sub" `Quick test_update_sub;
      Alcotest.test_case "hmac slices" `Quick test_hmac_slices;
      Alcotest.test_case "authenc zero-copy" `Quick test_authenc_zero_copy;
    ]
